#include "core/study.h"

#include <algorithm>
#include <map>

#include "core/study_ckpt.h"
#include "pdns/snapshot_io.h"

namespace govdns::core {

Study::Study(StudyInputs inputs)
    : inputs_(std::move(inputs)),
      resolver_(inputs_.transport, inputs_.root_hints) {
  GOVDNS_CHECK(inputs_.transport != nullptr);
  GOVDNS_CHECK(inputs_.pdns != nullptr || inputs_.pdns_snapshot != nullptr);
  GOVDNS_CHECK(inputs_.psl != nullptr);
  GOVDNS_CHECK(inputs_.policy != nullptr);
}

uint64_t StudyInputsFingerprint(const StudyInputs& inputs) {
  uint64_t fp = MiningConfigFingerprint(inputs.mining);
  fp = ckpt::MixFingerprint(fp, inputs.knowledge_base.size());
  fp = ckpt::MixFingerprint(fp, inputs.countries.size());
  fp = ckpt::MixFingerprint(fp, inputs.root_hints.size());
  return fp;
}

void Study::AttachCheckpoint(StudyCheckpoint* ckpt) {
  GOVDNS_CHECK(seeds_.empty() && mined_ == nullptr && active_ == nullptr);
  ckpt_ = ckpt;
  if (ckpt_ == nullptr) return;
  // The study-side identity the journal must match: the mining config plus
  // the shape of the research inputs. The world/config side (seed, scale) is
  // mixed in by the harness when it constructs the StudyCheckpoint.
  ckpt_->Bind(StudyInputsFingerprint(inputs_));
}

void Study::CheckInterrupt(const char* phase) const {
  if (interrupt_flag_ != nullptr &&
      interrupt_flag_->load(std::memory_order_relaxed)) {
    throw PipelineError(phase, "interrupted");
  }
}

const std::vector<SeedDomain>& Study::RunSelection() {
  if (ckpt_ != nullptr) {
    if (auto snap = ckpt_->TryLoadSelection()) {
      seeds_ = std::move(snap->seeds);
      selection_stats_ = snap->stats;
      // Replay the journaled profile rows so a resumed run exports the same
      // profile[] as the uninterrupted one (wall_ms rides along but is never
      // exported; logical_ms could not be recomputed without re-running).
      for (const obs::PhaseRecord& r : snap->profile) profiler_.Record(r);
      return seeds_;
    }
  }
  CheckInterrupt("selection");
  const size_t profile_mark = profiler_.records().size();
  {
    obs::PhaseProfiler::Scope phase(&profiler_, "selection");
    const uint64_t t0 = inputs_.transport->now_ms();
    SeedSelector selector(&resolver_, inputs_.psl, inputs_.policy);
    seeds_ = selector.Select(inputs_.knowledge_base, &selection_stats_);
    phase.set_logical_ms(inputs_.transport->now_ms() - t0);
    phase.set_items(static_cast<int64_t>(seeds_.size()));
  }
  if (ckpt_ != nullptr) {
    StudyCheckpoint::SelectionSnapshot snap;
    snap.seeds = seeds_;
    snap.stats = selection_stats_;
    const std::vector<obs::PhaseRecord> records = profiler_.records();
    snap.profile.assign(records.begin() + profile_mark, records.end());
    ckpt_->SaveSelection(snap);
  }
  return seeds_;
}

void Study::FoldMiningObs() const {
  if (obs_ == nullptr) return;
  // Mining is a pure function of (database, seeds, config) — the worker
  // count may not change a byte of it — so its stats are kStable and land
  // as registry-level counters (no worker shards here).
  obs::MetricsRegistry& m = obs_->metrics();
  const MiningStats& s = mined_->stats;
  m.Add(m.DeclareCounter("mining.seeds"), s.seeds);
  m.Add(m.DeclareCounter("mining.entries_scanned"), s.entries_scanned);
  m.Add(m.DeclareCounter("mining.entries_unstable"), s.entries_unstable);
  m.Add(m.DeclareCounter("mining.domains"), s.domains);
  m.Add(m.DeclareCounter("mining.domains_disposable"), s.domains_disposable);
  m.Add(m.DeclareCounter("mining.domains_in_active_window"),
        s.domains_in_active_window);
  m.Add(m.DeclareCounter("mining.ns_names"),
        static_cast<int64_t>(mined_->ns_names.size()));
}

const MinedDataset& Study::RunMining(MinerOptions options) {
  GOVDNS_CHECK(!seeds_.empty());
  if (ckpt_ != nullptr) {
    if (auto snap = ckpt_->TryLoadMining(inputs_.mining)) {
      mined_ = std::make_unique<MinedDataset>(std::move(snap->dataset));
      for (const obs::PhaseRecord& r : snap->profile) profiler_.Record(r);
      FoldMiningObs();
      return *mined_;
    }
  }
  CheckInterrupt("mining");
  const size_t profile_mark = profiler_.records().size();
  {
    obs::PhaseProfiler::Scope phase(&profiler_, "mining");
    if (options.profiler == nullptr) options.profiler = &profiler_;
    if (inputs_.pdns_snapshot != nullptr) {
      PdnsMiner miner(inputs_.mining, options);
      mined_ = std::make_unique<MinedDataset>(
          miner.MineSnapshot(*inputs_.pdns_snapshot, seeds_));
    } else {
      PdnsMiner miner(inputs_.pdns, inputs_.mining, options);
      mined_ = std::make_unique<MinedDataset>(miner.Mine(seeds_));
    }
    phase.set_items(mined_->stats.domains);
  }
  if (ckpt_ != nullptr) {
    StudyCheckpoint::MiningSnapshot snap;
    snap.dataset = *mined_;
    const std::vector<obs::PhaseRecord> records = profiler_.records();
    snap.profile.assign(records.begin() + profile_mark, records.end());
    ckpt_->SaveMining(snap);
  }
  FoldMiningObs();
  return *mined_;
}

const ActiveDataset& Study::RunActiveMeasurement(MeasurerOptions options) {
  GOVDNS_CHECK(mined_ != nullptr);
  obs::PhaseProfiler::Scope phase(&profiler_, "measurement");
  if (options.obs == nullptr) options.obs = obs_;
  std::vector<dns::Name> query_list = PdnsMiner::ActiveQueryList(*mined_);
  ActiveMeasurer measurer(inputs_.transport, inputs_.root_hints,
                          ResolverOptions(), options);

  // Study-level budget accounting (DESIGN.md §6g). Enforcement is
  // batch-granular: a batch's verdicts read only the accumulators of the
  // batches before it, so they are a pure function of (query list, results,
  // batch size) — identical for any worker count, and a resumed run replays
  // its restored prefix through the same accounting below.
  const bool budgets_armed = options.max_logical_ms_per_country > 0 ||
                             options.phase_deadline_logical_ms > 0;
  std::vector<int> countries;
  if (budgets_armed) countries = PdnsMiner::ActiveQueryCountries(*mined_);
  uint64_t phase_logical = 0;
  std::map<int, uint64_t> country_logical;
  auto account = [&](size_t begin,
                     const std::vector<MeasurementResult>& part) {
    for (size_t k = 0; k < part.size(); ++k) {
      phase_logical += part[k].logical_ms;
      if (budgets_armed) {
        country_logical[countries[begin + k]] += part[k].logical_ms;
      }
    }
  };

  // Measures query-list indices [begin, begin+count), pre-quarantining the
  // domains the study-level budgets already exclude.
  auto measure_batch = [&](size_t begin, size_t count) {
    const bool phase_over = options.phase_deadline_logical_ms > 0 &&
                            phase_logical >= options.phase_deadline_logical_ms;
    std::vector<dns::Name> live;
    std::vector<size_t> live_at;  // batch-local offsets of `live` entries
    std::vector<MeasurementResult> part(count);
    for (size_t k = 0; k < count; ++k) {
      const size_t i = begin + k;
      bool over = phase_over;
      if (!over && options.max_logical_ms_per_country > 0) {
        auto it = country_logical.find(countries[i]);
        over = it != country_logical.end() &&
               it->second >= options.max_logical_ms_per_country;
      }
      if (over) {
        // Placeholder: the domain was never queried. Every other field stays
        // empty/zero so the quarantine is visible (and journal-roundtrips)
        // without inventing measurement data.
        part[k].domain = query_list[i];
        part[k].degraded = true;
        part[k].quarantine_reason = QuarantineReason::kBudgetExceeded;
      } else {
        live.push_back(query_list[i]);
        live_at.push_back(k);
      }
    }
    if (!live.empty()) {
      std::vector<MeasurementResult> measured = measurer.MeasureAll(live);
      for (size_t j = 0; j < live.size(); ++j) {
        part[live_at[j]] = std::move(measured[j]);
      }
    }
    account(begin, part);
    return part;
  };

  std::vector<MeasurementResult> results;
  if (ckpt_ == nullptr && !budgets_armed) {
    // Fast path: one pool pass over the whole list.
    results = measurer.MeasureAll(query_list);
    measurement_counters_ = measurer.merged_counters();
    measurement_queries_sent_ = measurer.merged_queries_sent();
  } else {
    size_t batch_size = options.budget_batch_size;
    if (batch_size == 0) {
      batch_size = ckpt_ != nullptr ? ckpt_->options().batch_size : size_t{64};
    }
    if (ckpt_ != nullptr) {
      results = ckpt_->LoadActiveBatches(query_list.size());
      // Replay the restored prefix through the budget accumulators so the
      // resumed run's cutoff decisions match the uninterrupted run's.
      account(0, results);
      if (!results.empty() && results.size() < query_list.size() &&
          ckpt_->options().snapshot_cut_cache) {
        // Warm start: skip re-deriving infrastructure the finished batches
        // already paid for. Purely advisory — per-domain results are hermetic
        // either way — and positives-only, so no stale negative can replay.
        ckpt_->RestoreCutCache(measurer.shared_cache());
      }
    }
    while (results.size() < query_list.size()) {
      CheckInterrupt("measurement");
      const size_t begin = results.size();
      const size_t count = std::min(batch_size, query_list.size() - begin);
      std::vector<MeasurementResult> part = measure_batch(begin, count);
      if (ckpt_ != nullptr) {
        ckpt_->AppendActiveBatch(begin, part);
        if (ckpt_->options().snapshot_cut_cache) {
          ckpt_->SaveCutCacheSnapshot(*measurer.shared_cache());
        }
      }
      for (MeasurementResult& r : part) results.push_back(std::move(r));
    }
    // Derived, not merged: per-domain query_stats sum to exactly the pool's
    // merged counters (uniform accounting), and unlike the live merge the
    // sum is also available for batches restored from the journal.
    measurement_counters_ = ResolverCounters{};
    for (const MeasurementResult& r : results) {
      measurement_counters_ += r.query_stats;
    }
    measurement_queries_sent_ = measurement_counters_.queries;
  }
  if (ckpt_ != nullptr) {
    // Journal the phase's degradation summary (DESIGN.md §6g) so a resumed
    // run carries the quarantine verdicts without re-deriving them. One
    // frame per journal: a resume that restored the full prefix reuses the
    // journaled frame (and must agree with it — the summary is a pure
    // function of the results) instead of appending a duplicate.
    StudyCheckpoint::QuarantineSnapshot qsnap;
    for (const MeasurementResult& r : results) {
      switch (r.quarantine_reason) {
        case QuarantineReason::kNone:
          break;
        case QuarantineReason::kHang:
          ++qsnap.total;
          ++qsnap.hang;
          break;
        case QuarantineReason::kBlackhole:
          ++qsnap.total;
          ++qsnap.blackhole;
          break;
        case QuarantineReason::kBudgetExceeded:
          ++qsnap.total;
          ++qsnap.budget_exceeded;
          break;
        case QuarantineReason::kWatchdogCancelled:
          ++qsnap.total;
          ++qsnap.watchdog_cancelled;
          break;
        case QuarantineReason::kVantageLost:
          ++qsnap.total;
          ++qsnap.vantage_lost;
          break;
      }
    }
    if (auto loaded = ckpt_->TryLoadQuarantine()) {
      GOVDNS_CHECK(*loaded == qsnap);
    } else {
      ckpt_->SaveQuarantine(qsnap);
    }
  }
  measurement_cache_stats_ = measurer.shared_cache()->stats();
  // Logical time: the sum of per-domain scope clocks, not the global clock —
  // domain scopes run on context-local clocks, and the sum is the quantity
  // that stays deterministic across worker counts (and across resumes).
  uint64_t logical = 0;
  for (const MeasurementResult& r : results) logical += r.logical_ms;
  phase.set_logical_ms(logical);
  phase.set_items(static_cast<int64_t>(results.size()));
  active_ = std::make_unique<ActiveDataset>(
      ActiveDataset::Build(std::move(results), seeds_, inputs_.countries));
  PublishCheckpointGauges();
  return *active_;
}

void Study::PublishCheckpointGauges() const {
  if (ckpt_ == nullptr || obs_ == nullptr) return;
  // Diagnostic by nature: how much was recovered depends on where the
  // previous run died, so none of this may feed a deterministic export.
  obs::MetricsRegistry& m = obs_->metrics();
  const StudyCheckpointStats& s = ckpt_->stats();
  const ckpt::JournalStats& js = ckpt_->journal_stats();
  m.SetGauge("ckpt.phases_loaded", s.phases_loaded);
  m.SetGauge("ckpt.batches_loaded", s.batches_loaded);
  m.SetGauge("ckpt.results_loaded", s.results_loaded);
  m.SetGauge("ckpt.cache_entries_restored", s.cache_entries_restored);
  m.SetGauge("ckpt.decode_rejects", s.decode_rejects);
  m.SetGauge("ckpt.commits", static_cast<int64_t>(js.commits));
  m.SetGauge("ckpt.bytes_written", static_cast<int64_t>(js.bytes_written));
  m.SetGauge("ckpt.frame_rejections", static_cast<int64_t>(js.Rejections()));
}

void Study::RunAll() {
  RunSelection();
  RunMining();
  RunActiveMeasurement();
}

}  // namespace govdns::core
