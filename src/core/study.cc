#include "core/study.h"

namespace govdns::core {

Study::Study(StudyInputs inputs)
    : inputs_(std::move(inputs)),
      resolver_(inputs_.transport, inputs_.root_hints) {
  GOVDNS_CHECK(inputs_.transport != nullptr);
  GOVDNS_CHECK(inputs_.pdns != nullptr);
  GOVDNS_CHECK(inputs_.psl != nullptr);
  GOVDNS_CHECK(inputs_.policy != nullptr);
}

const std::vector<SeedDomain>& Study::RunSelection() {
  SeedSelector selector(&resolver_, inputs_.psl, inputs_.policy);
  seeds_ = selector.Select(inputs_.knowledge_base, &selection_stats_);
  return seeds_;
}

const MinedDataset& Study::RunMining() {
  GOVDNS_CHECK(!seeds_.empty());
  PdnsMiner miner(inputs_.pdns, inputs_.mining);
  mined_ = std::make_unique<MinedDataset>(miner.Mine(seeds_));
  return *mined_;
}

const ActiveDataset& Study::RunActiveMeasurement(MeasurerOptions options) {
  GOVDNS_CHECK(mined_ != nullptr);
  std::vector<dns::Name> query_list = PdnsMiner::ActiveQueryList(*mined_);
  ActiveMeasurer measurer(inputs_.transport, inputs_.root_hints,
                          ResolverOptions(), options);
  std::vector<MeasurementResult> results = measurer.MeasureAll(query_list);
  measurement_counters_ = measurer.merged_counters();
  measurement_queries_sent_ = measurer.merged_queries_sent();
  measurement_cache_stats_ = measurer.shared_cache()->stats();
  active_ = std::make_unique<ActiveDataset>(
      ActiveDataset::Build(std::move(results), seeds_, inputs_.countries));
  return *active_;
}

void Study::RunAll() {
  RunSelection();
  RunMining();
  RunActiveMeasurement();
}

}  // namespace govdns::core
