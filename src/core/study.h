// End-to-end study orchestration: selection -> PDNS mining -> active
// measurement -> analyses. This is the top-level public API a user of the
// library drives (see examples/quickstart.cc); each stage can also be run
// independently for partial studies.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/analysis.h"
#include "core/measure.h"
#include "core/mining.h"
#include "core/providers.h"
#include "core/resolver.h"
#include "core/selection.h"
#include "core/types.h"

namespace govdns::core {

struct StudyInputs {
  // Substrates (a simulated world, or the real Internet via sockets).
  dns::QueryTransport* transport = nullptr;
  std::vector<geo::IPv4> root_hints;
  const pdns::PdnsDatabase* pdns = nullptr;
  const geo::AsnDatabase* asn_db = nullptr;
  const registrar::RegistrarClient* registrar = nullptr;
  const registrar::PublicSuffixList* psl = nullptr;
  const RegistryPolicyLookup* policy = nullptr;

  // Research inputs.
  std::vector<KnowledgeBaseRecord> knowledge_base;
  std::vector<CountryMeta> countries;

  MiningConfig mining;
};

class Study {
 public:
  explicit Study(StudyInputs inputs);

  // §III-A. Must run first.
  const std::vector<SeedDomain>& RunSelection();
  // §III-B/C (requires selection).
  const MinedDataset& RunMining();
  // Fig. 1 measurements over the mined query list (requires mining).
  const ActiveDataset& RunActiveMeasurement(
      MeasurerOptions options = MeasurerOptions());

  // Runs all three stages.
  void RunAll();

  // --- Results ------------------------------------------------------------
  const std::vector<SeedDomain>& seeds() const { return seeds_; }
  const SelectionStats& selection_stats() const { return selection_stats_; }
  const MinedDataset& mined() const { return *mined_; }
  const ActiveDataset& active() const { return *active_; }
  bool has_mined() const { return mined_ != nullptr; }
  bool has_active() const { return active_ != nullptr; }

  IterativeResolver& resolver() { return resolver_; }
  const StudyInputs& inputs() const { return inputs_; }

 private:
  StudyInputs inputs_;
  IterativeResolver resolver_;
  std::vector<SeedDomain> seeds_;
  SelectionStats selection_stats_;
  std::unique_ptr<MinedDataset> mined_;
  std::unique_ptr<ActiveDataset> active_;
};

}  // namespace govdns::core
