// End-to-end study orchestration: selection -> PDNS mining -> active
// measurement -> analyses. This is the top-level public API a user of the
// library drives (see examples/quickstart.cc); each stage can also be run
// independently for partial studies.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/cut_cache.h"
#include "core/measure.h"
#include "core/mining.h"
#include "core/providers.h"
#include "core/resolver.h"
#include "core/selection.h"
#include "core/types.h"
#include "obs/obs.h"

namespace govdns::core {

class StudyCheckpoint;

// A pipeline stage failed (or was interrupted) in a way the study cannot
// recover from internally. Carries which phase died and why, so the CLI can
// exit non-zero with a structured {phase, cause} diagnostic instead of an
// anonymous what() string.
class PipelineError : public std::runtime_error {
 public:
  PipelineError(std::string phase, std::string cause)
      : std::runtime_error(phase + ": " + cause),
        phase_(std::move(phase)),
        cause_(std::move(cause)) {}

  const std::string& phase() const { return phase_; }
  const std::string& cause() const { return cause_; }

 private:
  std::string phase_;
  std::string cause_;
};

struct StudyInputs {
  // Substrates (a simulated world, or the real Internet via sockets).
  dns::QueryTransport* transport = nullptr;
  std::vector<geo::IPv4> root_hints;
  const pdns::PdnsDatabase* pdns = nullptr;
  // Optional memory-mapped snapshot standing in for `pdns` during mining
  // (the --map-snapshot fast path; DESIGN.md §6i). When set, RunMining
  // mines it zero-copy — no freeze phase — and `pdns` may be null. The
  // mined dataset is byte-identical either way, so the checkpoint identity
  // does not depend on which substrate served mining.
  const pdns::MappedPdnsSnapshot* pdns_snapshot = nullptr;
  const geo::AsnDatabase* asn_db = nullptr;
  const registrar::RegistrarClient* registrar = nullptr;
  const registrar::PublicSuffixList* psl = nullptr;
  const RegistryPolicyLookup* policy = nullptr;

  // Research inputs.
  std::vector<KnowledgeBaseRecord> knowledge_base;
  std::vector<CountryMeta> countries;

  MiningConfig mining;
};

// The study-side checkpoint identity: the mining-config digest mixed with
// the shape of the research inputs. Study::AttachCheckpoint binds the
// journal with it; the vantage supervisor recomputes it out-of-process to
// open a finished shard's journal for the merge.
uint64_t StudyInputsFingerprint(const StudyInputs& inputs);

class Study {
 public:
  explicit Study(StudyInputs inputs);

  // §III-A. Must run first.
  const std::vector<SeedDomain>& RunSelection();
  // §III-B/C (requires selection). Runs the sharded miner: options.workers
  // threads (0 = all cores) over a frozen PDNS snapshot; the MinedDataset is
  // byte-identical for any worker count. The study's phase profiler is
  // wired in as the default sub-phase sink.
  const MinedDataset& RunMining(MinerOptions options = MinerOptions());
  // Fig. 1 measurements over the mined query list (requires mining). Runs
  // the sharded pool measurer: options.workers threads (0 = all cores), a
  // shared zone-cut cache, results and per-domain stats independent of the
  // worker count.
  const ActiveDataset& RunActiveMeasurement(
      MeasurerOptions options = MeasurerOptions());

  // Runs all three stages.
  void RunAll();

  // Attaches an observability context (not owned; caller keeps it alive for
  // the study's lifetime; may be null to detach). Mining folds its
  // MiningStats into obs->metrics(); active measurement additionally samples
  // query traces and logs shared-cut publishes. Independent of the study's
  // own phase profiler, which always runs.
  void AttachObservability(obs::Observability* obs) { obs_ = obs; }

  // Attaches a checkpoint (not owned; caller keeps it alive for the study's
  // lifetime; may be null to detach). Binds the checkpoint to this study's
  // config identity (mining-config digest + input shape), then each phase
  // commits a snapshot on completion and, when the checkpoint is in resume
  // mode, loads from the journal instead of recomputing. Active measurement
  // runs in journaled batches of options().batch_size domains. Must be
  // attached before the first Run* call.
  void AttachCheckpoint(StudyCheckpoint* ckpt);

  // Cooperative interruption (not owned; may be null). Checked between
  // phases and between measurement batches: when *flag becomes true the
  // current batch finishes, its checkpoint commits, and the pipeline throws
  // PipelineError(phase, "interrupted") — the signal-flush path of the CLI.
  void set_interrupt_flag(const std::atomic<bool>* flag) {
    interrupt_flag_ = flag;
  }

  // Per-phase profile of every stage run so far (selection, mining,
  // measurement). logical_ms is deterministic SimClock time; wall_ms is
  // diagnostic only and never folded into deterministic outputs.
  const obs::PhaseProfiler& profiler() const { return profiler_; }

  // --- Results ------------------------------------------------------------
  const std::vector<SeedDomain>& seeds() const { return seeds_; }
  const SelectionStats& selection_stats() const { return selection_stats_; }
  const MinedDataset& mined() const { return *mined_; }
  const ActiveDataset& active() const { return *active_; }
  bool has_mined() const { return mined_ != nullptr; }
  bool has_active() const { return active_ != nullptr; }

  IterativeResolver& resolver() { return resolver_; }
  const StudyInputs& inputs() const { return inputs_; }

  // Aggregate query effort of the last RunActiveMeasurement (summed over the
  // measurement pool's workers; surface queries only).
  const ResolverCounters& measurement_counters() const {
    return measurement_counters_;
  }
  uint64_t measurement_queries_sent() const {
    return measurement_queries_sent_;
  }
  // Shared-cut-cache statistics of the last RunActiveMeasurement.
  const CutCacheStats& measurement_cache_stats() const {
    return measurement_cache_stats_;
  }

 private:
  // Throws PipelineError(phase, "interrupted") when the interrupt flag is up.
  void CheckInterrupt(const char* phase) const;
  // Folds mining stats into the attached observability registry (runs for
  // both computed and checkpoint-restored datasets).
  void FoldMiningObs() const;
  // Diagnostic ckpt.* gauges on the attached registry (no-op without obs).
  void PublishCheckpointGauges() const;

  StudyInputs inputs_;
  IterativeResolver resolver_;
  std::vector<SeedDomain> seeds_;
  SelectionStats selection_stats_;
  std::unique_ptr<MinedDataset> mined_;
  std::unique_ptr<ActiveDataset> active_;
  ResolverCounters measurement_counters_;
  uint64_t measurement_queries_sent_ = 0;
  CutCacheStats measurement_cache_stats_;
  obs::Observability* obs_ = nullptr;
  obs::PhaseProfiler profiler_;
  StudyCheckpoint* ckpt_ = nullptr;
  const std::atomic<bool>* interrupt_flag_ = nullptr;
};

}  // namespace govdns::core
