// Iterative DNS resolution over a QueryTransport.
//
// The measurement client needs three capabilities the paper's setup (Fig. 1)
// assumes: locating a domain's parent-zone authoritative servers, resolving
// arbitrary hostnames to IPv4 addresses, and issuing direct queries to
// specific server addresses. All three are built on one iterative walk from
// the root, with a per-resolver zone-cut cache so measuring 150k domains
// does not re-resolve gov.cn's servers 30k times.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "dns/message.h"
#include "dns/transport.h"
#include "geo/ipv4.h"
#include "util/status.h"

namespace govdns::core {

// How a single server responded to a single query.
enum class QueryOutcome {
  kAuthAnswer,     // authoritative answer with records for the question
  kAuthNegative,   // authoritative NXDOMAIN / NODATA
  kReferral,       // delegation toward the question
  kNonAuthAnswer,  // records but no AA bit
  kRefused,        // REFUSED/SERVFAIL/NOTIMP rcode
  kTimeout,        // no reply
  kUnreachable,    // nothing at that address
  kMalformed,      // undecodable reply
};

struct ServerReply {
  geo::IPv4 server;
  QueryOutcome outcome = QueryOutcome::kTimeout;
  std::optional<dns::Message> message;
};

struct ResolverOptions {
  int max_referrals = 24;  // delegation-chain depth bound
  int max_cname_chain = 4;
  int retries = 0;         // extra attempts per server on timeout
};

class IterativeResolver {
 public:
  using Options = ResolverOptions;

  IterativeResolver(dns::QueryTransport* transport,
                    std::vector<geo::IPv4> root_hints,
                    ResolverOptions options = ResolverOptions());

  // One query to one server. Never throws; outcome explains failures.
  ServerReply QueryServer(geo::IPv4 server, const dns::Name& name,
                          dns::RRType type);

  // Full iterative resolution. Returns the answer records (possibly empty
  // for authoritative NODATA); an unreachable chain yields a non-OK status.
  util::StatusOr<std::vector<dns::ResourceRecord>> Resolve(
      const dns::Name& name, dns::RRType type);

  // Resolve to IPv4 addresses, following CNAMEs.
  util::StatusOr<std::vector<geo::IPv4>> ResolveAddresses(
      const dns::Name& host);

  // The servers of the most specific zone *properly containing* `name` the
  // resolver can reach — i.e. the parent zone's ADNS if `name` is a zone
  // apex. Walks from the root without ever querying `name`'s own servers.
  struct ZoneServers {
    dns::Name zone;                      // zone origin
    std::vector<dns::Name> ns_names;     // its NS set as seen from above
    std::vector<geo::IPv4> addresses;    // resolved server addresses
  };
  util::StatusOr<ZoneServers> FindEnclosingZoneServers(const dns::Name& name);

  // Statistics for the harness.
  uint64_t queries_sent() const { return queries_sent_; }
  size_t cache_size() const { return cut_cache_.size(); }
  void ClearCache() { cut_cache_.clear(); }

 private:
  struct CachedCut {
    std::vector<dns::Name> ns_names;
    std::vector<geo::IPv4> addresses;
    bool reachable = true;  // false: remembering a dead subtree
  };

  // Walks the delegation chain toward `name`. Returns the deepest zone at
  // or above `name` whose servers could be found, stopping *before*
  // descending into a zone whose apex is `name` itself when
  // `stop_above` is true.
  util::StatusOr<ZoneServers> WalkToZone(const dns::Name& name,
                                         bool stop_above, int depth_budget);

  // Extracts a referral's target cut and NS records from a message.
  static std::optional<dns::Name> ReferralCut(const dns::Message& msg);

  util::StatusOr<std::vector<geo::IPv4>> AddressesForNs(
      const std::vector<dns::Name>& ns_names,
      const std::vector<dns::ResourceRecord>& glue, int depth_budget);

  // Budgeted internals: the budget bounds mutual recursion through
  // glueless-delegation resolution.
  util::StatusOr<std::vector<dns::ResourceRecord>> ResolveInternal(
      const dns::Name& name, dns::RRType type, int depth_budget);
  util::StatusOr<std::vector<geo::IPv4>> ResolveAddressesInternal(
      const dns::Name& host, int depth_budget);

  dns::QueryTransport* transport_;
  std::vector<geo::IPv4> roots_;
  Options options_;
  uint16_t next_id_ = 1;
  uint64_t queries_sent_ = 0;
  std::map<dns::Name, CachedCut> cut_cache_;
};

}  // namespace govdns::core
