// Iterative DNS resolution over a QueryTransport.
//
// The measurement client needs three capabilities the paper's setup (Fig. 1)
// assumes: locating a domain's parent-zone authoritative servers, resolving
// arbitrary hostnames to IPv4 addresses, and issuing direct queries to
// specific server addresses. All three are built on one iterative walk from
// the root, with a per-resolver zone-cut cache so measuring 150k domains
// does not re-resolve gov.cn's servers 30k times.
//
// Resilience: every server query runs under a RetryPolicy (fresh transaction
// id per attempt, exponential backoff with deterministic jitter charged to
// the transport clock), per-server health tracking opens a circuit breaker
// on repeatedly dead servers, and unreachable zone cuts are negatively
// cached with expiry so one dead subtree cannot eat the whole query budget.
#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <vector>

#include "dns/message.h"
#include "dns/transport.h"
#include "geo/ipv4.h"
#include "obs/trace.h"
#include "util/status.h"

namespace govdns::core {

class SharedCutCache;

// How a single server responded to a single query.
enum class QueryOutcome {
  kAuthAnswer,     // authoritative answer with records for the question
  kAuthNegative,   // authoritative NXDOMAIN / NODATA
  kReferral,       // delegation toward the question
  kNonAuthAnswer,  // records but no AA bit
  kRefused,        // REFUSED/SERVFAIL/NOTIMP rcode
  kTimeout,        // no reply
  kUnreachable,    // nothing at that address
  kMalformed,      // undecodable / spoofed / truncated reply
};

struct ServerReply {
  geo::IPv4 server;
  QueryOutcome outcome = QueryOutcome::kTimeout;
  std::optional<dns::Message> message;
};

// Per-server-query retry schedule. Attempt k (0-based) that fails waits
// backoff = min(max_backoff_ms, initial_backoff_ms * multiplier^k), shrunk
// by up to jitter_fraction via a deterministic draw, before attempt k+1.
// The wait is charged to the transport's logical clock — nothing sleeps.
struct RetryPolicy {
  int max_attempts = 3;            // total attempts per server query
  uint32_t initial_backoff_ms = 200;
  double backoff_multiplier = 2.0;
  uint32_t max_backoff_ms = 3000;
  double jitter_fraction = 0.25;   // deterministic jitter, shrinks the wait

  // Per-server circuit breaker: after this many consecutive timeouts or
  // unreachables the server is skipped (reported kUnreachable without
  // traffic) until cooldown_ms of transport time passes. 0 disables.
  int breaker_threshold = 3;
  uint32_t breaker_cooldown_ms = 60000;

  // The naive pre-retry-engine behaviour: one attempt, no backoff, no
  // breaker. The chaos ablation's "armor off" arm.
  static RetryPolicy Disabled() {
    RetryPolicy p;
    p.max_attempts = 1;
    p.breaker_threshold = 0;
    return p;
  }
};

// Cumulative per-outcome counters. Snapshot-diffable: the measurer charges
// each domain with `after - before` to attribute query effort per domain.
struct ResolverCounters {
  uint64_t queries = 0;        // datagrams actually sent
  uint64_t retries = 0;        // attempts beyond the first
  uint64_t timeouts = 0;
  uint64_t unreachable = 0;
  uint64_t refused = 0;        // REFUSED/SERVFAIL/NOTIMP replies
  uint64_t malformed = 0;      // undecodable datagrams
  uint64_t wrong_id = 0;       // id/question mismatch (discarded)
  uint64_t truncated = 0;      // TC-bit replies (unusable over UDP)
  uint64_t backoff_ms = 0;     // logical time spent backing off
  uint64_t breaker_skips = 0;  // queries suppressed by an open circuit
  uint64_t negative_cache_hits = 0;  // walks cut short by a cached-dead zone
  uint64_t budget_denied = 0;  // queries suppressed by the domain budget
  uint64_t deadline_denied = 0;  // queries suppressed by the domain deadline

  ResolverCounters operator-(const ResolverCounters& rhs) const;
  ResolverCounters& operator+=(const ResolverCounters& rhs);
  friend bool operator==(const ResolverCounters&,
                         const ResolverCounters&) = default;
};

struct ResolverOptions {
  int max_referrals = 24;  // delegation-chain depth bound
  int max_cname_chain = 4;
  RetryPolicy retry;       // per-server-query retry/backoff/health policy
  // How long a zone cut discovered to be unreachable stays negatively
  // cached (transport-clock ms) before the resolver will try it again.
  // Every negative carries an explicit expiry derived from the transport's
  // logical clock at discovery time — never a wall clock, and never persisted
  // across runs (checkpoint restore drops negatives, DESIGN.md §6f).
  uint32_t negative_cache_ttl_ms = 120000;
  // Bound on negative entries the private cut cache retains. Past the bound
  // CacheUnreachable evicts expired negatives first, then the
  // earliest-expiring live one, so a long or resumed run cannot accumulate
  // stale dead-subtree verdicts without limit. 0 disables the bound.
  size_t max_negative_cuts = 512;

  // Default per-domain logical-time deadline (ms of transport-clock time)
  // the measurer arms when MeasurerOptions does not override it. 0 = none.
  // See DESIGN.md §6g: the deadline bounds how long a single domain can
  // stall on hanging/blackholed servers before it is quarantined.
  uint64_t domain_deadline_ms = 0;

  // Engine mode: when set, zone cuts are resolved through this shared
  // thread-safe cache instead of the resolver's private one, every cut
  // computation runs in its own hermetic chaos context (keyed by the parent
  // zone, so racing workers compute identical entries), and the query effort
  // it costs is charged to the cache's infrastructure counters rather than
  // to this resolver's — per-domain query_stats then depend only on the
  // world seed and the domain, never on which worker warmed the cache. The
  // caller must keep the cache alive for the resolver's lifetime. In engine
  // mode the armed query budget caps only the caller-attributed (surface)
  // queries; shared-cut computation is bounded by the cache itself.
  SharedCutCache* shared_cache = nullptr;
};

class IterativeResolver {
 public:
  using Options = ResolverOptions;

  IterativeResolver(dns::QueryTransport* transport,
                    std::vector<geo::IPv4> root_hints,
                    ResolverOptions options = ResolverOptions());

  // One query to one server, run under the retry policy. Never throws;
  // outcome explains failures. A malformed / spoofed / truncated datagram
  // counts like loss and consumes a retry; kMalformed is reported only once
  // attempts are exhausted.
  ServerReply QueryServer(geo::IPv4 server, const dns::Name& name,
                          dns::RRType type);

  // Full iterative resolution. Returns the answer records (possibly empty
  // for authoritative NODATA); an unreachable chain yields a non-OK status.
  util::StatusOr<std::vector<dns::ResourceRecord>> Resolve(
      const dns::Name& name, dns::RRType type);

  // Resolve to IPv4 addresses, following CNAMEs.
  util::StatusOr<std::vector<geo::IPv4>> ResolveAddresses(
      const dns::Name& host);

  // The servers of the most specific zone *properly containing* `name` the
  // resolver can reach — i.e. the parent zone's ADNS if `name` is a zone
  // apex. Walks from the root without ever querying `name`'s own servers.
  struct ZoneServers {
    dns::Name zone;                      // zone origin
    std::vector<dns::Name> ns_names;     // its NS set as seen from above
    std::vector<geo::IPv4> addresses;    // resolved server addresses
  };
  util::StatusOr<ZoneServers> FindEnclosingZoneServers(const dns::Name& name);

  // --- Query budget --------------------------------------------------------
  // Hard cap on datagrams sent until DisarmQueryBudget; once spent, further
  // QueryServer calls report kTimeout without traffic and the exhausted
  // flag latches. The measurer arms this per domain.
  void ArmQueryBudget(uint64_t max_queries);
  void DisarmQueryBudget();
  bool BudgetExhausted() const { return budget_exhausted_; }

  // --- Logical deadline (DESIGN.md §6g) ------------------------------------
  // Hard cap on transport-clock time: once now_ms() reaches the armed
  // deadline, further QueryServer calls report kTimeout without traffic and
  // the exceeded flag latches. The measurer arms this per domain; shared-cut
  // computation (InfraScope) runs outside the deadline, like the budget, so
  // infrastructure cost is never charged against a single domain's clock.
  void ArmDeadline(uint64_t budget_ms);
  void DisarmDeadline();
  bool DeadlineExceeded() const { return deadline_exceeded_; }

  // --- Watchdog cancellation -----------------------------------------------
  // While `flag` (owned by the caller) reads true, QueryServer fails fast
  // with kTimeout and the cancelled latch sets. Wall-clock-driven and
  // therefore *not* part of ResolverCounters: it must never influence the
  // deterministic per-domain byte stream. nullptr detaches.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_flag_ = flag; }
  bool WatchdogCancelled() const { return watchdog_cancelled_; }
  void ClearCancelLatch() { watchdog_cancelled_ = false; }

  // --- Per-domain hermetic scope (engine mode) -----------------------------
  // Brackets one unit of attributable work (one measured domain): pushes a
  // chaos context derived from `domain` onto the transport and resets the
  // per-domain resolver state (breaker map, backoff jitter stream) to a
  // deterministic function of the domain. Inside the scope, every outcome is
  // a pure function of (world seed, domain, shared-cache semantics) — the
  // foundation of worker-count-independent measurement results. No-ops when
  // no shared cache is configured.
  void BeginDomainScope(const dns::Name& domain);
  void EndDomainScope();

  // --- Structured tracing --------------------------------------------------
  // While set, every resolver-level decision (attempt, backoff, breaker
  // verdict, negative-cache hit, budget denial, outcome) appends one event,
  // timestamped with the transport's logical clock. Inside a hermetic domain
  // scope the whole event stream is a pure function of (world seed, domain).
  // Shared-cut computation is never traced: InfraScope suppresses the
  // pointer for its extent, because infra interleaving is
  // scheduling-dependent. Caller keeps the trace alive; nullptr disables.
  void set_trace(obs::DomainTrace* trace) { trace_ = trace; }

  // The transport's logical clock (for caller-recorded trace events).
  uint64_t now_ms() const { return transport_->now_ms(); }

  // Statistics for the harness.
  uint64_t queries_sent() const { return queries_sent_; }
  const ResolverCounters& counters() const { return counters_; }
  size_t cache_size() const { return cut_cache_.size(); }
  // Health-tracking introspection: servers currently behind an open breaker.
  size_t open_circuits() const;
  void ClearCache() { cut_cache_.clear(); }
  const Options& options() const { return options_; }

 private:
  struct CachedCut {
    std::vector<dns::Name> ns_names;
    std::vector<geo::IPv4> addresses;
    bool reachable = true;   // false: remembering a dead subtree
    uint64_t expires_ms = 0; // unreachable entries only: retry-after time
  };

  struct ServerHealth {
    int consecutive_failures = 0;
    uint64_t open_until_ms = 0;  // breaker open while now < open_until_ms
  };

  // Walks the delegation chain toward `name`. Returns the deepest zone at
  // or above `name` whose servers could be found, stopping *before*
  // descending into a zone whose apex is `name` itself when
  // `stop_above` is true.
  util::StatusOr<ZoneServers> WalkToZone(const dns::Name& name,
                                         bool stop_above, int depth_budget);

  // Engine-mode walk: same contract as WalkToZone but resolved through the
  // shared cache. Each referral-resolution hop runs inside a hermetic
  // InfraScope keyed by the zone being queried, so the hop's outcome — and
  // the entry it publishes — depends only on (world seed, zone, parent entry
  // content), never on which worker or in which order hops were computed.
  util::StatusOr<ZoneServers> WalkToZoneShared(const dns::Name& name,
                                               bool stop_above,
                                               int depth_budget);

  // RAII bracket for one shared-cache computation step. On entry: pushes a
  // zone-keyed chaos context on the transport and swaps in fresh per-step
  // resolver state (empty breaker map, zone-seeded jitter stream, no armed
  // budget). On exit: charges the step's query effort to the shared cache's
  // infrastructure counters, restores the caller's state, pops the context.
  class InfraScope {
   public:
    InfraScope(IterativeResolver& r, const dns::Name& zone);
    ~InfraScope();
    InfraScope(const InfraScope&) = delete;
    InfraScope& operator=(const InfraScope&) = delete;

   private:
    IterativeResolver& r_;
    ResolverCounters saved_counters_;
    uint64_t saved_queries_sent_;
    uint64_t saved_jitter_state_;
    std::optional<uint64_t> saved_budget_remaining_;
    bool saved_budget_exhausted_;
    std::optional<uint64_t> saved_deadline_at_ms_;
    bool saved_deadline_exceeded_;
    std::map<geo::IPv4, ServerHealth> saved_health_;
    obs::DomainTrace* saved_trace_;
  };

  // Extracts a referral's target cut and NS records from a message.
  static std::optional<dns::Name> ReferralCut(const dns::Message& msg);

  util::StatusOr<std::vector<geo::IPv4>> AddressesForNs(
      const std::vector<dns::Name>& ns_names,
      const std::vector<dns::ResourceRecord>& glue, int depth_budget);

  // Budgeted internals: the budget bounds mutual recursion through
  // glueless-delegation resolution.
  util::StatusOr<std::vector<dns::ResourceRecord>> ResolveInternal(
      const dns::Name& name, dns::RRType type, int depth_budget);
  util::StatusOr<std::vector<geo::IPv4>> ResolveAddressesInternal(
      const dns::Name& host, int depth_budget);

  // QueryServer body; the public wrapper appends the kOutcome trace event.
  ServerReply QueryServerImpl(geo::IPv4 server, const dns::Name& name,
                              dns::RRType type);

  // Appends a trace event when tracing is active (no-op otherwise).
  void Trace(obs::TraceEventKind kind, uint32_t server = 0, uint8_t aux = 0);

  // Retry/health plumbing.
  bool CircuitOpen(geo::IPv4 server) const;
  void RecordFailure(geo::IPv4 server);   // timeout/unreachable only
  void RecordSuccess(geo::IPv4 server);
  void Backoff(int attempt);              // charges the transport clock
  void CacheUnreachable(const dns::Name& cut, std::vector<dns::Name> ns_names);

  dns::QueryTransport* transport_;
  std::vector<geo::IPv4> roots_;
  Options options_;
  uint16_t next_id_ = 1;
  uint64_t queries_sent_ = 0;
  uint64_t jitter_state_ = 0x6a7e9cb1d2f30e45ull;
  ResolverCounters counters_;
  std::optional<uint64_t> budget_remaining_;
  bool budget_exhausted_ = false;
  std::optional<uint64_t> deadline_at_ms_;
  bool deadline_exceeded_ = false;
  const std::atomic<bool>* cancel_flag_ = nullptr;
  bool watchdog_cancelled_ = false;
  std::map<dns::Name, CachedCut> cut_cache_;
  std::map<geo::IPv4, ServerHealth> health_;
  bool domain_scope_active_ = false;
  obs::DomainTrace* trace_ = nullptr;
};

}  // namespace govdns::core
