#include "core/resolver.h"

#include <algorithm>

namespace govdns::core {

IterativeResolver::IterativeResolver(dns::QueryTransport* transport,
                                     std::vector<geo::IPv4> root_hints,
                                     ResolverOptions options)
    : transport_(transport), roots_(std::move(root_hints)), options_(options) {
  GOVDNS_CHECK(transport != nullptr);
  GOVDNS_CHECK(!roots_.empty());
}

ServerReply IterativeResolver::QueryServer(geo::IPv4 server,
                                           const dns::Name& name,
                                           dns::RRType type) {
  ServerReply reply;
  reply.server = server;
  dns::Message query = dns::MakeQuery(next_id_++, name, type);
  std::vector<uint8_t> wire = query.Encode();

  for (int attempt = 0; attempt <= options_.retries; ++attempt) {
    ++queries_sent_;
    auto raw = transport_->Exchange(server, wire);
    if (!raw.ok()) {
      reply.outcome = raw.status().code() == util::ErrorCode::kUnavailable
                          ? QueryOutcome::kUnreachable
                          : QueryOutcome::kTimeout;
      if (reply.outcome == QueryOutcome::kTimeout) continue;  // retry
      return reply;
    }
    auto msg = dns::Message::Decode(*raw);
    if (!msg.ok()) {
      reply.outcome = QueryOutcome::kMalformed;
      return reply;
    }
    if (msg->header.id != query.header.id) {
      reply.outcome = QueryOutcome::kMalformed;
      return reply;
    }
    reply.message = *std::move(msg);
    const dns::Message& m = *reply.message;
    switch (m.header.rcode) {
      case dns::Rcode::kNoError:
        if (!m.answers.empty()) {
          reply.outcome = m.header.aa ? QueryOutcome::kAuthAnswer
                                      : QueryOutcome::kNonAuthAnswer;
        } else if (m.IsReferral()) {
          reply.outcome = QueryOutcome::kReferral;
        } else {
          reply.outcome = m.header.aa ? QueryOutcome::kAuthNegative
                                      : QueryOutcome::kNonAuthAnswer;
        }
        return reply;
      case dns::Rcode::kNxDomain:
        reply.outcome = QueryOutcome::kAuthNegative;
        return reply;
      default:
        reply.outcome = QueryOutcome::kRefused;
        return reply;
    }
  }
  return reply;  // exhausted retries: kTimeout
}

std::optional<dns::Name> IterativeResolver::ReferralCut(
    const dns::Message& msg) {
  for (const dns::ResourceRecord& rr : msg.authority) {
    if (rr.type() == dns::RRType::kNS) return rr.name;
  }
  return std::nullopt;
}

util::StatusOr<std::vector<geo::IPv4>> IterativeResolver::AddressesForNs(
    const std::vector<dns::Name>& ns_names,
    const std::vector<dns::ResourceRecord>& glue, int depth_budget) {
  std::vector<geo::IPv4> out;
  std::vector<dns::Name> need_lookup;
  for (const dns::Name& ns : ns_names) {
    bool found_glue = false;
    for (const dns::ResourceRecord& rr : glue) {
      if (rr.type() == dns::RRType::kA && rr.name == ns) {
        out.push_back(std::get<dns::ARdata>(rr.rdata).address);
        found_glue = true;
      }
    }
    if (!found_glue) need_lookup.push_back(ns);
  }
  // Glueless targets: full resolution, bounded by depth.
  if (depth_budget > 0) {
    for (const dns::Name& ns : need_lookup) {
      if (!out.empty() && out.size() >= 13) break;
      auto addrs = ResolveAddressesInternal(ns, depth_budget - 1);
      if (addrs.ok()) {
        out.insert(out.end(), addrs->begin(), addrs->end());
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (out.empty()) return util::NotFoundError("no addresses for NS set");
  return out;
}

util::StatusOr<IterativeResolver::ZoneServers> IterativeResolver::WalkToZone(
    const dns::Name& name, bool stop_above, int depth_budget) {
  if (depth_budget <= 0) return util::InternalError("resolution depth");

  ZoneServers current;
  current.zone = dns::Name::Root();
  current.addresses = roots_;

  // Start from the deepest cached ancestor zone (proper ancestor when the
  // caller wants to stop above the name itself).
  const size_t max_count = name.LabelCount() - (stop_above ? 1 : 0);
  for (size_t count = max_count; count > 0; --count) {
    auto it = cut_cache_.find(name.Suffix(count));
    if (it != cut_cache_.end() && it->second.reachable) {
      current.zone = name.Suffix(count);
      current.ns_names = it->second.ns_names;
      current.addresses = it->second.addresses;
      break;
    }
  }

  for (int hop = 0; hop < options_.max_referrals; ++hop) {
    ServerReply usable;
    bool have_usable = false;
    for (geo::IPv4 server : current.addresses) {
      ServerReply r = QueryServer(server, name, dns::RRType::kNS);
      if (r.outcome == QueryOutcome::kReferral ||
          r.outcome == QueryOutcome::kAuthAnswer ||
          r.outcome == QueryOutcome::kAuthNegative ||
          r.outcome == QueryOutcome::kNonAuthAnswer) {
        usable = std::move(r);
        have_usable = true;
        break;
      }
    }
    if (!have_usable) {
      return util::UnavailableError("servers of " + current.zone.ToString() +
                                    " unresponsive");
    }
    if (usable.outcome != QueryOutcome::kReferral) {
      // The current zone's servers answered directly (they host the target
      // zone too, or the name does not exist): the walk ends here.
      return current;
    }

    auto cut = ReferralCut(*usable.message);
    if (!cut || !name.IsSubdomainOf(*cut) ||
        !cut->IsProperSubdomainOf(current.zone)) {
      return util::ParseError("lame referral from " + current.zone.ToString());
    }
    if (stop_above && *cut == name) {
      // The next zone down *is* the name: current servers are its parent's.
      return current;
    }
    std::vector<dns::Name> ns_names;
    for (const dns::ResourceRecord& rr : usable.message->authority) {
      if (rr.type() == dns::RRType::kNS && rr.name == *cut) {
        ns_names.push_back(std::get<dns::NsRdata>(rr.rdata).nameserver);
      }
    }
    auto addrs =
        AddressesForNs(ns_names, usable.message->additional, depth_budget - 1);
    if (!addrs.ok()) {
      cut_cache_[*cut] = CachedCut{ns_names, {}, false};
      return util::UnavailableError("unresolvable delegation at " +
                                    cut->ToString());
    }
    current.zone = *cut;
    current.ns_names = ns_names;
    current.addresses = *addrs;
    cut_cache_[*cut] = CachedCut{ns_names, *addrs, true};
  }
  return util::InternalError("referral chain too long for " + name.ToString());
}

util::StatusOr<std::vector<dns::ResourceRecord>> IterativeResolver::Resolve(
    const dns::Name& name, dns::RRType type) {
  return ResolveInternal(name, type, options_.max_referrals);
}

util::StatusOr<std::vector<dns::ResourceRecord>>
IterativeResolver::ResolveInternal(const dns::Name& name, dns::RRType type,
                                   int depth_budget) {
  auto zone = WalkToZone(name, /*stop_above=*/false, depth_budget);
  if (!zone.ok()) return zone.status();
  for (geo::IPv4 server : zone->addresses) {
    ServerReply r = QueryServer(server, name, type);
    switch (r.outcome) {
      case QueryOutcome::kAuthAnswer:
      case QueryOutcome::kNonAuthAnswer:
        return r.message->answers;
      case QueryOutcome::kAuthNegative:
        return std::vector<dns::ResourceRecord>{};
      case QueryOutcome::kReferral: {
        // A referral here means WalkToZone's terminal server also serves a
        // deeper zone cut for other names; rare, treat next server.
        continue;
      }
      default:
        continue;
    }
  }
  return util::UnavailableError("no server answered for " + name.ToString());
}

util::StatusOr<std::vector<geo::IPv4>> IterativeResolver::ResolveAddresses(
    const dns::Name& host) {
  return ResolveAddressesInternal(host, options_.max_referrals);
}

util::StatusOr<std::vector<geo::IPv4>>
IterativeResolver::ResolveAddressesInternal(const dns::Name& host,
                                            int depth_budget) {
  if (depth_budget <= 0) return util::InternalError("resolution depth");
  dns::Name current = host;
  for (int hop = 0; hop <= options_.max_cname_chain; ++hop) {
    auto records = ResolveInternal(current, dns::RRType::kA, depth_budget - 1);
    if (!records.ok()) return records.status();
    std::vector<geo::IPv4> addrs;
    std::optional<dns::Name> cname;
    for (const dns::ResourceRecord& rr : *records) {
      if (rr.type() == dns::RRType::kA) {
        addrs.push_back(std::get<dns::ARdata>(rr.rdata).address);
      } else if (rr.type() == dns::RRType::kCNAME) {
        cname = std::get<dns::CnameRdata>(rr.rdata).target;
      }
    }
    if (!addrs.empty()) {
      std::sort(addrs.begin(), addrs.end());
      addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());
      return addrs;
    }
    if (!cname) return util::NotFoundError("no A records for " + host.ToString());
    current = *cname;
  }
  return util::NotFoundError("CNAME chain too long for " + host.ToString());
}

util::StatusOr<IterativeResolver::ZoneServers>
IterativeResolver::FindEnclosingZoneServers(const dns::Name& name) {
  if (name.IsRoot()) return util::InvalidArgumentError("root has no parent");
  return WalkToZone(name, /*stop_above=*/true, options_.max_referrals);
}

}  // namespace govdns::core
