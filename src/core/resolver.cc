#include "core/resolver.h"

#include <algorithm>

#include "core/cut_cache.h"
#include "util/rng.h"

namespace govdns::core {

namespace {
// Salts separating the four deterministic streams engine mode derives from
// names: chaos-context tags and backoff-jitter seeds, each keyed either by a
// zone (shared-cut computation) or by a measured domain (surface queries).
constexpr uint64_t kCutTagSalt = 0x63757454616753ull;      // "cutTagS"
constexpr uint64_t kCutJitterSalt = 0x63757453656564ull;   // "cutSeed"
constexpr uint64_t kDomainTagSalt = 0x646f6d54616753ull;   // "domTagS"
constexpr uint64_t kDomainJitterSalt = 0x646f6d53656564ull; // "domSeed"
}  // namespace

ResolverCounters ResolverCounters::operator-(
    const ResolverCounters& rhs) const {
  ResolverCounters d;
  d.queries = queries - rhs.queries;
  d.retries = retries - rhs.retries;
  d.timeouts = timeouts - rhs.timeouts;
  d.unreachable = unreachable - rhs.unreachable;
  d.refused = refused - rhs.refused;
  d.malformed = malformed - rhs.malformed;
  d.wrong_id = wrong_id - rhs.wrong_id;
  d.truncated = truncated - rhs.truncated;
  d.backoff_ms = backoff_ms - rhs.backoff_ms;
  d.breaker_skips = breaker_skips - rhs.breaker_skips;
  d.negative_cache_hits = negative_cache_hits - rhs.negative_cache_hits;
  d.budget_denied = budget_denied - rhs.budget_denied;
  d.deadline_denied = deadline_denied - rhs.deadline_denied;
  return d;
}

ResolverCounters& ResolverCounters::operator+=(const ResolverCounters& rhs) {
  queries += rhs.queries;
  retries += rhs.retries;
  timeouts += rhs.timeouts;
  unreachable += rhs.unreachable;
  refused += rhs.refused;
  malformed += rhs.malformed;
  wrong_id += rhs.wrong_id;
  truncated += rhs.truncated;
  backoff_ms += rhs.backoff_ms;
  breaker_skips += rhs.breaker_skips;
  negative_cache_hits += rhs.negative_cache_hits;
  budget_denied += rhs.budget_denied;
  deadline_denied += rhs.deadline_denied;
  return *this;
}

IterativeResolver::IterativeResolver(dns::QueryTransport* transport,
                                     std::vector<geo::IPv4> root_hints,
                                     ResolverOptions options)
    : transport_(transport), roots_(std::move(root_hints)), options_(options) {
  GOVDNS_CHECK(transport != nullptr);
  GOVDNS_CHECK(!roots_.empty());
}

void IterativeResolver::ArmQueryBudget(uint64_t max_queries) {
  if (max_queries == 0) {
    budget_remaining_.reset();
  } else {
    budget_remaining_ = max_queries;
  }
  budget_exhausted_ = false;
}

void IterativeResolver::DisarmQueryBudget() { budget_remaining_.reset(); }

void IterativeResolver::ArmDeadline(uint64_t budget_ms) {
  if (budget_ms == 0) {
    deadline_at_ms_.reset();
  } else {
    deadline_at_ms_ = transport_->now_ms() + budget_ms;
  }
  deadline_exceeded_ = false;
}

void IterativeResolver::DisarmDeadline() { deadline_at_ms_.reset(); }

size_t IterativeResolver::open_circuits() const {
  const uint64_t now = transport_->now_ms();
  size_t open = 0;
  for (const auto& [server, health] : health_) {
    if (now < health.open_until_ms) ++open;
  }
  return open;
}

bool IterativeResolver::CircuitOpen(geo::IPv4 server) const {
  if (options_.retry.breaker_threshold <= 0) return false;
  auto it = health_.find(server);
  return it != health_.end() && transport_->now_ms() < it->second.open_until_ms;
}

void IterativeResolver::RecordFailure(geo::IPv4 server) {
  if (options_.retry.breaker_threshold <= 0) return;
  ServerHealth& h = health_[server];
  if (++h.consecutive_failures >= options_.retry.breaker_threshold) {
    h.open_until_ms =
        transport_->now_ms() + options_.retry.breaker_cooldown_ms;
    h.consecutive_failures = 0;  // half-open after cooldown: start fresh
    Trace(obs::TraceEventKind::kBreakerOpen, server.bits());
  }
}

void IterativeResolver::Trace(obs::TraceEventKind kind, uint32_t server,
                              uint8_t aux) {
  if (trace_ != nullptr) {
    trace_->Record(kind, transport_->now_ms(), server, aux);
  }
}

void IterativeResolver::RecordSuccess(geo::IPv4 server) {
  if (options_.retry.breaker_threshold <= 0) return;
  auto it = health_.find(server);
  if (it != health_.end()) health_.erase(it);
}

void IterativeResolver::Backoff(int attempt) {
  const RetryPolicy& p = options_.retry;
  double delay = double(p.initial_backoff_ms);
  for (int i = 1; i < attempt; ++i) delay *= p.backoff_multiplier;
  delay = std::min(delay, double(p.max_backoff_ms));
  if (p.jitter_fraction > 0.0) {
    // Deterministic jitter: shrink the wait by up to jitter_fraction so a
    // retry fleet never synchronizes, without ever waiting longer than the
    // schedule promises.
    double u = double(util::SplitMix64(jitter_state_) >> 11) /
               double(uint64_t{1} << 53);
    delay *= 1.0 - p.jitter_fraction * u;
  }
  uint32_t ms = static_cast<uint32_t>(delay);
  counters_.backoff_ms += ms;
  transport_->Delay(ms);
  Trace(obs::TraceEventKind::kBackoff, 0, static_cast<uint8_t>(attempt));
}

ServerReply IterativeResolver::QueryServer(geo::IPv4 server,
                                           const dns::Name& name,
                                           dns::RRType type) {
  ServerReply reply = QueryServerImpl(server, name, type);
  Trace(obs::TraceEventKind::kOutcome, server.bits(),
        static_cast<uint8_t>(reply.outcome));
  return reply;
}

ServerReply IterativeResolver::QueryServerImpl(geo::IPv4 server,
                                               const dns::Name& name,
                                               dns::RRType type) {
  ServerReply reply;
  reply.server = server;

  // Watchdog cancellation: a wall-clock supervisor asked this worker to
  // abandon its in-flight domain. Checked first and untraced/uncounted in
  // the deterministic stream — it must never change the bytes of a run in
  // which it does not fire.
  if (cancel_flag_ != nullptr &&
      cancel_flag_->load(std::memory_order_relaxed)) {
    watchdog_cancelled_ = true;
    reply.outcome = QueryOutcome::kTimeout;
    return reply;
  }
  if (budget_remaining_ && *budget_remaining_ == 0) {
    budget_exhausted_ = true;
    ++counters_.budget_denied;
    Trace(obs::TraceEventKind::kBudgetDenied, server.bits());
    reply.outcome = QueryOutcome::kTimeout;
    return reply;
  }
  if (deadline_at_ms_ && transport_->now_ms() >= *deadline_at_ms_) {
    deadline_exceeded_ = true;
    ++counters_.deadline_denied;
    Trace(obs::TraceEventKind::kDeadlineDenied, server.bits());
    reply.outcome = QueryOutcome::kTimeout;
    return reply;
  }
  if (CircuitOpen(server)) {
    // A server known-dead within the cooldown window: skip without traffic.
    ++counters_.breaker_skips;
    Trace(obs::TraceEventKind::kBreakerSkip, server.bits());
    reply.outcome = QueryOutcome::kUnreachable;
    return reply;
  }

  const int attempts = std::max(1, options_.retry.max_attempts);
  QueryOutcome failure = QueryOutcome::kTimeout;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (cancel_flag_ != nullptr &&
        cancel_flag_->load(std::memory_order_relaxed)) {
      watchdog_cancelled_ = true;
      break;
    }
    if (budget_remaining_ && *budget_remaining_ == 0) {
      budget_exhausted_ = true;
      ++counters_.budget_denied;
      Trace(obs::TraceEventKind::kBudgetDenied, server.bits());
      break;
    }
    if (deadline_at_ms_ && transport_->now_ms() >= *deadline_at_ms_) {
      deadline_exceeded_ = true;
      ++counters_.deadline_denied;
      Trace(obs::TraceEventKind::kDeadlineDenied, server.bits());
      break;
    }
    if (attempt > 0) {
      ++counters_.retries;
      Backoff(attempt);
    }
    // A fresh transaction id per attempt: a delayed reply to attempt N-1
    // can never validate attempt N.
    dns::Message query = dns::MakeQuery(next_id_++, name, type);
    ++queries_sent_;
    ++counters_.queries;
    Trace(obs::TraceEventKind::kQuery, server.bits(),
          static_cast<uint8_t>(attempt));
    if (budget_remaining_) --*budget_remaining_;

    auto raw = transport_->Exchange(server, query.Encode());
    if (!raw.ok()) {
      if (raw.status().code() == util::ErrorCode::kUnavailable) {
        // Promptly unreachable (ICMP-style): retrying cannot help.
        ++counters_.unreachable;
        RecordFailure(server);
        reply.outcome = QueryOutcome::kUnreachable;
        return reply;
      }
      ++counters_.timeouts;
      RecordFailure(server);
      failure = QueryOutcome::kTimeout;
      continue;
    }
    auto msg = dns::Message::Decode(*raw);
    if (!msg.ok()) {
      // Garbage datagram: counts like loss and consumes a retry. The
      // endpoint did emit bytes, so the reachability breaker is untouched.
      ++counters_.malformed;
      failure = QueryOutcome::kMalformed;
      continue;
    }
    if (msg->header.id != query.header.id ||
        (!msg->questions.empty() && msg->questions[0] != query.questions[0])) {
      // Off-path spoof / NAT rewrite: discard like a real resolver would
      // and keep waiting (here: retry).
      ++counters_.wrong_id;
      failure = QueryOutcome::kMalformed;
      continue;
    }
    if (msg->header.tc) {
      // Truncated over UDP with no TCP fallback in the measurement path:
      // the payload is unusable, treat like loss.
      ++counters_.truncated;
      failure = QueryOutcome::kMalformed;
      continue;
    }

    RecordSuccess(server);
    reply.message = *std::move(msg);
    const dns::Message& m = *reply.message;
    switch (m.header.rcode) {
      case dns::Rcode::kNoError:
        if (!m.answers.empty()) {
          reply.outcome = m.header.aa ? QueryOutcome::kAuthAnswer
                                      : QueryOutcome::kNonAuthAnswer;
        } else if (m.IsReferral()) {
          reply.outcome = QueryOutcome::kReferral;
        } else {
          reply.outcome = m.header.aa ? QueryOutcome::kAuthNegative
                                      : QueryOutcome::kNonAuthAnswer;
        }
        return reply;
      case dns::Rcode::kNxDomain:
        reply.outcome = QueryOutcome::kAuthNegative;
        return reply;
      default:
        ++counters_.refused;
        reply.outcome = QueryOutcome::kRefused;
        return reply;
    }
  }
  reply.outcome = failure;  // exhausted attempts: kTimeout or kMalformed
  reply.message.reset();
  return reply;
}

std::optional<dns::Name> IterativeResolver::ReferralCut(
    const dns::Message& msg) {
  for (const dns::ResourceRecord& rr : msg.authority) {
    if (rr.type() == dns::RRType::kNS) return rr.name;
  }
  return std::nullopt;
}

util::StatusOr<std::vector<geo::IPv4>> IterativeResolver::AddressesForNs(
    const std::vector<dns::Name>& ns_names,
    const std::vector<dns::ResourceRecord>& glue, int depth_budget) {
  std::vector<geo::IPv4> out;
  std::vector<dns::Name> need_lookup;
  for (const dns::Name& ns : ns_names) {
    bool found_glue = false;
    for (const dns::ResourceRecord& rr : glue) {
      if (rr.type() == dns::RRType::kA && rr.name == ns) {
        out.push_back(std::get<dns::ARdata>(rr.rdata).address);
        found_glue = true;
      }
    }
    if (!found_glue) need_lookup.push_back(ns);
  }
  // Glueless targets: full resolution, bounded by depth.
  if (depth_budget > 0) {
    for (const dns::Name& ns : need_lookup) {
      if (!out.empty() && out.size() >= 13) break;
      auto addrs = ResolveAddressesInternal(ns, depth_budget - 1);
      if (addrs.ok()) {
        out.insert(out.end(), addrs->begin(), addrs->end());
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (out.empty()) return util::NotFoundError("no addresses for NS set");
  return out;
}

void IterativeResolver::CacheUnreachable(const dns::Name& cut,
                                         std::vector<dns::Name> ns_names) {
  const uint64_t now = transport_->now_ms();
  if (options_.max_negative_cuts > 0 && cut_cache_.count(cut) == 0) {
    size_t negatives = 0;
    for (const auto& [name, cached] : cut_cache_) {
      if (!cached.reachable) ++negatives;
    }
    // Evict expired negatives first; if every negative is still live, drop
    // the earliest-expiring one. Map order makes the tie-break (first in
    // name order) deterministic.
    while (negatives >= options_.max_negative_cuts) {
      auto victim = cut_cache_.end();
      for (auto it = cut_cache_.begin(); it != cut_cache_.end(); ++it) {
        if (it->second.reachable) continue;
        if (it->second.expires_ms <= now) {
          victim = it;
          break;
        }
        if (victim == cut_cache_.end() ||
            it->second.expires_ms < victim->second.expires_ms) {
          victim = it;
        }
      }
      if (victim == cut_cache_.end()) break;
      cut_cache_.erase(victim);
      --negatives;
    }
  }
  CachedCut entry;
  entry.ns_names = std::move(ns_names);
  entry.reachable = false;
  entry.expires_ms = now + options_.negative_cache_ttl_ms;
  cut_cache_[cut] = std::move(entry);
}

IterativeResolver::InfraScope::InfraScope(IterativeResolver& r,
                                          const dns::Name& zone)
    : r_(r),
      saved_counters_(r.counters_),
      saved_queries_sent_(r.queries_sent_),
      saved_jitter_state_(r.jitter_state_),
      saved_budget_remaining_(r.budget_remaining_),
      saved_budget_exhausted_(r.budget_exhausted_),
      saved_deadline_at_ms_(r.deadline_at_ms_),
      saved_deadline_exceeded_(r.deadline_exceeded_),
      saved_health_(std::move(r.health_)),
      saved_trace_(r.trace_) {
  // Shared-cut computation is never traced into the active domain's log:
  // whether this step runs at all depends on cache state, i.e. scheduling.
  r.trace_ = nullptr;
  r.counters_ = ResolverCounters{};
  r.queries_sent_ = 0;
  r.jitter_state_ = util::HashString(zone.ToString(), kCutJitterSalt);
  // Shared-cut probes run unbudgeted: a domain's armed budget must not leak
  // into (or be consumed by) cache computation another domain may reuse.
  r.budget_remaining_.reset();
  r.budget_exhausted_ = false;
  // Same for the deadline: the infra step has its own hermetic clock, and a
  // domain's deadline must not bound cache computation other domains reuse.
  r.deadline_at_ms_.reset();
  r.deadline_exceeded_ = false;
  r.health_.clear();
  r.transport_->PushChaosContext(util::HashString(zone.ToString(), kCutTagSalt));
}

IterativeResolver::InfraScope::~InfraScope() {
  r_.transport_->PopChaosContext();
  r_.options_.shared_cache->ChargeInfra(r_.counters_);
  r_.counters_ = saved_counters_;
  r_.queries_sent_ = saved_queries_sent_;
  r_.jitter_state_ = saved_jitter_state_;
  r_.budget_remaining_ = saved_budget_remaining_;
  r_.budget_exhausted_ = saved_budget_exhausted_;
  r_.deadline_at_ms_ = saved_deadline_at_ms_;
  r_.deadline_exceeded_ = saved_deadline_exceeded_;
  r_.health_ = std::move(saved_health_);
  r_.trace_ = saved_trace_;
}

void IterativeResolver::BeginDomainScope(const dns::Name& domain) {
  if (options_.shared_cache == nullptr) return;
  GOVDNS_CHECK(!domain_scope_active_);
  domain_scope_active_ = true;
  // Per-domain state is reseeded so nothing from previously measured domains
  // (breaker verdicts, jitter-stream position) can influence this one.
  // Cross-domain dead-server memory is instead delegated to the shared
  // negative cut cache.
  health_.clear();
  jitter_state_ = util::HashString(domain.ToString(), kDomainJitterSalt);
  transport_->PushChaosContext(
      util::HashString(domain.ToString(), kDomainTagSalt));
}

void IterativeResolver::EndDomainScope() {
  if (options_.shared_cache == nullptr) return;
  GOVDNS_CHECK(domain_scope_active_);
  domain_scope_active_ = false;
  transport_->PopChaosContext();
}

util::StatusOr<IterativeResolver::ZoneServers>
IterativeResolver::WalkToZoneShared(const dns::Name& name, bool stop_above,
                                    int depth_budget) {
  if (depth_budget <= 0) return util::InternalError("resolution depth");
  SharedCutCache& cache = *options_.shared_cache;

  ZoneServers current;
  current.zone = dns::Name::Root();
  current.addresses = roots_;

  // Start from the deepest cached ancestor. An unexpired dead subtree fails
  // the walk immediately; an *expired* negative entry is treated as a plain
  // miss — no eager erase, because the hermetic re-probe below reproduces
  // the identical outcome and simply republishes over it.
  const size_t max_count = name.LabelCount() - (stop_above ? 1 : 0);
  for (size_t count = max_count; count > 0; --count) {
    auto entry = cache.Lookup(name.Suffix(count));
    if (!entry.has_value()) continue;
    if (entry->reachable) {
      current.zone = name.Suffix(count);
      current.ns_names = std::move(entry->ns_names);
      current.addresses = std::move(entry->addresses);
      break;
    }
    if (transport_->now_ms() < entry->expires_ms) {
      ++counters_.negative_cache_hits;
      Trace(obs::TraceEventKind::kNegativeCacheHit);
      return util::UnavailableError("cached-unreachable zone at " +
                                    name.Suffix(count).ToString());
    }
  }

  for (int hop = 0; hop < options_.max_referrals; ++hop) {
    // One referral-resolution step, computed hermetically: inside the scope
    // every draw, clock tick and breaker verdict is a pure function of
    // (world seed, current zone, the cut being descended into) — so racing
    // workers that probe the same cut publish byte-identical entries, and
    // the step's cost lands on the cache's infra counters, not this domain.
    bool dead = false, direct = false, lame = false, stop_here = false;
    bool cut_unresolvable = false;
    dns::Name cut;
    std::vector<dns::Name> ns_names;
    std::vector<geo::IPv4> addrs;
    uint64_t neg_expires = 0;
    {
      InfraScope scope(*this, current.zone);
      ServerReply usable;
      bool have_usable = false;
      for (geo::IPv4 server : current.addresses) {
        ServerReply r = QueryServer(server, name, dns::RRType::kNS);
        if (r.outcome == QueryOutcome::kReferral ||
            r.outcome == QueryOutcome::kAuthAnswer ||
            r.outcome == QueryOutcome::kAuthNegative ||
            r.outcome == QueryOutcome::kNonAuthAnswer) {
          usable = std::move(r);
          have_usable = true;
          break;
        }
      }
      if (!have_usable) {
        dead = true;
        neg_expires = transport_->now_ms() + options_.negative_cache_ttl_ms;
      } else if (usable.outcome != QueryOutcome::kReferral) {
        direct = true;
      } else {
        auto c = ReferralCut(*usable.message);
        if (!c || !name.IsSubdomainOf(*c) ||
            !c->IsProperSubdomainOf(current.zone)) {
          lame = true;
        } else if (stop_above && *c == name) {
          stop_here = true;
        } else {
          cut = *c;
          for (const dns::ResourceRecord& rr : usable.message->authority) {
            if (rr.type() == dns::RRType::kNS && rr.name == cut) {
              ns_names.push_back(std::get<dns::NsRdata>(rr.rdata).nameserver);
            }
          }
          auto a = AddressesForNs(ns_names, usable.message->additional,
                                  depth_budget - 1);
          if (!a.ok()) {
            cut_unresolvable = true;
            neg_expires =
                transport_->now_ms() + options_.negative_cache_ttl_ms;
          } else {
            addrs = *std::move(a);
          }
        }
      }
    }
    if (dead) {
      if (watchdog_cancelled_) {
        // Abandoned by the wall-clock watchdog, not refused by the zone:
        // "dead" is a scheduling artifact here. Publishing it would poison
        // the shared cache for every worker — and turn the requeue-once
        // retry into an instant negative-cache hit. Fail this walk
        // verdict-free and uncounted, like every other cancellation effect.
        return util::UnavailableError("walk cancelled under " +
                                      current.zone.ToString());
      }
      // Never negatively cache the root: a transiently dark root would
      // poison every later walk, for every worker, for the whole cooldown.
      if (!current.zone.IsRoot()) {
        cache.PublishUnreachable(current.zone, current.ns_names, neg_expires,
                                 transport_->now_ms());
      }
      // Uniform accounting: the domain whose walk probed the dead subtree
      // and the domains that later hit the cached negative each record
      // exactly one negative_cache_hit, so per-domain stats do not depend
      // on which worker got there first.
      ++counters_.negative_cache_hits;
      Trace(obs::TraceEventKind::kNegativeCacheHit);
      return util::UnavailableError("servers of " + current.zone.ToString() +
                                    " unresponsive");
    }
    if (direct) return current;
    if (lame) {
      return util::ParseError("lame referral from " + current.zone.ToString());
    }
    if (stop_here) {
      // The next zone down *is* the name: current servers are its parent's.
      // Not published — the entry is created on demand by walks that need
      // to descend *through* this cut rather than stop at it.
      return current;
    }
    if (cut_unresolvable) {
      if (watchdog_cancelled_) {
        return util::UnavailableError("walk cancelled under " +
                                      cut.ToString());
      }
      cache.PublishUnreachable(cut, ns_names, neg_expires,
                               transport_->now_ms());
      ++counters_.negative_cache_hits;
      Trace(obs::TraceEventKind::kNegativeCacheHit);
      return util::UnavailableError("unresolvable delegation at " +
                                    cut.ToString());
    }
    SharedCutCache::Entry entry;
    entry.ns_names = ns_names;
    entry.addresses = addrs;
    cache.Publish(cut, std::move(entry));
    current.zone = std::move(cut);
    current.ns_names = std::move(ns_names);
    current.addresses = std::move(addrs);
  }
  return util::InternalError("referral chain too long for " + name.ToString());
}

util::StatusOr<IterativeResolver::ZoneServers> IterativeResolver::WalkToZone(
    const dns::Name& name, bool stop_above, int depth_budget) {
  if (options_.shared_cache != nullptr) {
    return WalkToZoneShared(name, stop_above, depth_budget);
  }
  if (depth_budget <= 0) return util::InternalError("resolution depth");

  ZoneServers current;
  current.zone = dns::Name::Root();
  current.addresses = roots_;

  // Start from the deepest cached ancestor zone (proper ancestor when the
  // caller wants to stop above the name itself). A cached-unreachable
  // ancestor that has not expired fails the walk immediately: the dead
  // subtree was already paid for once.
  const size_t max_count = name.LabelCount() - (stop_above ? 1 : 0);
  for (size_t count = max_count; count > 0; --count) {
    auto it = cut_cache_.find(name.Suffix(count));
    if (it == cut_cache_.end()) continue;
    if (it->second.reachable) {
      current.zone = name.Suffix(count);
      current.ns_names = it->second.ns_names;
      current.addresses = it->second.addresses;
      break;
    }
    if (transport_->now_ms() < it->second.expires_ms) {
      ++counters_.negative_cache_hits;
      Trace(obs::TraceEventKind::kNegativeCacheHit);
      return util::UnavailableError("cached-unreachable zone at " +
                                    it->first.ToString());
    }
    cut_cache_.erase(it);  // negative entry expired: try the subtree again
  }

  for (int hop = 0; hop < options_.max_referrals; ++hop) {
    ServerReply usable;
    bool have_usable = false;
    for (geo::IPv4 server : current.addresses) {
      ServerReply r = QueryServer(server, name, dns::RRType::kNS);
      if (r.outcome == QueryOutcome::kReferral ||
          r.outcome == QueryOutcome::kAuthAnswer ||
          r.outcome == QueryOutcome::kAuthNegative ||
          r.outcome == QueryOutcome::kNonAuthAnswer) {
        usable = std::move(r);
        have_usable = true;
        break;
      }
    }
    if (!have_usable) {
      // Remember the dead zone (never the root: a transiently dark root
      // would poison every later walk for the whole cooldown; never a
      // verdict produced by a spent budget or a watchdog cancellation —
      // those say nothing about the zone).
      if (!current.zone.IsRoot() && !budget_exhausted_ &&
          !watchdog_cancelled_) {
        CacheUnreachable(current.zone, current.ns_names);
      }
      return util::UnavailableError("servers of " + current.zone.ToString() +
                                    " unresponsive");
    }
    if (usable.outcome != QueryOutcome::kReferral) {
      // The current zone's servers answered directly (they host the target
      // zone too, or the name does not exist): the walk ends here.
      return current;
    }

    auto cut = ReferralCut(*usable.message);
    if (!cut || !name.IsSubdomainOf(*cut) ||
        !cut->IsProperSubdomainOf(current.zone)) {
      return util::ParseError("lame referral from " + current.zone.ToString());
    }
    if (stop_above && *cut == name) {
      // The next zone down *is* the name: current servers are its parent's.
      return current;
    }
    std::vector<dns::Name> ns_names;
    for (const dns::ResourceRecord& rr : usable.message->authority) {
      if (rr.type() == dns::RRType::kNS && rr.name == *cut) {
        ns_names.push_back(std::get<dns::NsRdata>(rr.rdata).nameserver);
      }
    }
    auto addrs =
        AddressesForNs(ns_names, usable.message->additional, depth_budget - 1);
    if (!addrs.ok()) {
      if (!watchdog_cancelled_) CacheUnreachable(*cut, ns_names);
      return util::UnavailableError("unresolvable delegation at " +
                                    cut->ToString());
    }
    current.zone = *cut;
    current.ns_names = ns_names;
    current.addresses = *addrs;
    cut_cache_[*cut] = CachedCut{ns_names, *addrs, true, 0};
  }
  return util::InternalError("referral chain too long for " + name.ToString());
}

util::StatusOr<std::vector<dns::ResourceRecord>> IterativeResolver::Resolve(
    const dns::Name& name, dns::RRType type) {
  return ResolveInternal(name, type, options_.max_referrals);
}

util::StatusOr<std::vector<dns::ResourceRecord>>
IterativeResolver::ResolveInternal(const dns::Name& name, dns::RRType type,
                                   int depth_budget) {
  auto zone = WalkToZone(name, /*stop_above=*/false, depth_budget);
  if (!zone.ok()) return zone.status();
  for (geo::IPv4 server : zone->addresses) {
    ServerReply r = QueryServer(server, name, type);
    switch (r.outcome) {
      case QueryOutcome::kAuthAnswer:
      case QueryOutcome::kNonAuthAnswer:
        return r.message->answers;
      case QueryOutcome::kAuthNegative:
        return std::vector<dns::ResourceRecord>{};
      case QueryOutcome::kReferral: {
        // A referral here means WalkToZone's terminal server also serves a
        // deeper zone cut for other names; rare, treat next server.
        continue;
      }
      default:
        continue;
    }
  }
  return util::UnavailableError("no server answered for " + name.ToString());
}

util::StatusOr<std::vector<geo::IPv4>> IterativeResolver::ResolveAddresses(
    const dns::Name& host) {
  return ResolveAddressesInternal(host, options_.max_referrals);
}

util::StatusOr<std::vector<geo::IPv4>>
IterativeResolver::ResolveAddressesInternal(const dns::Name& host,
                                            int depth_budget) {
  if (depth_budget <= 0) return util::InternalError("resolution depth");
  dns::Name current = host;
  for (int hop = 0; hop <= options_.max_cname_chain; ++hop) {
    auto records = ResolveInternal(current, dns::RRType::kA, depth_budget - 1);
    if (!records.ok()) return records.status();
    std::vector<geo::IPv4> addrs;
    std::optional<dns::Name> cname;
    for (const dns::ResourceRecord& rr : *records) {
      if (rr.type() == dns::RRType::kA) {
        addrs.push_back(std::get<dns::ARdata>(rr.rdata).address);
      } else if (rr.type() == dns::RRType::kCNAME) {
        cname = std::get<dns::CnameRdata>(rr.rdata).target;
      }
    }
    if (!addrs.empty()) {
      std::sort(addrs.begin(), addrs.end());
      addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());
      return addrs;
    }
    if (!cname) return util::NotFoundError("no A records for " + host.ToString());
    current = *cname;
  }
  return util::NotFoundError("CNAME chain too long for " + host.ToString());
}

util::StatusOr<IterativeResolver::ZoneServers>
IterativeResolver::FindEnclosingZoneServers(const dns::Name& name) {
  if (name.IsRoot()) return util::InvalidArgumentError("root has no parent");
  return WalkToZone(name, /*stop_above=*/true, options_.max_referrals);
}

}  // namespace govdns::core
