// Study-level checkpoint/resume over the ckpt journal (DESIGN.md §6f).
//
// One StudyCheckpoint owns the journal of one study run. The chain:
//
//   selection.ck  (parent 0)
//     -> mining.ck
//       -> active_000000.ck -> active_000001.ck -> ...   (batched results)
//       -> cutcache.ck   (advisory warm-start, chained to mining)
//     -> report.ck       (final JSON, chained to the last batch)
//
// Phase snapshots carry the phase's outputs *and* the PhaseProfiler records
// it produced, so a resumed run replays the profile rows and the exported
// report JSON stays byte-identical to an uninterrupted run. The cut-cache
// snapshot is purely advisory — positives only, never required for
// correctness — because per-domain measurement is hermetic: a cold cache is
// recomputed to identical content, and negatives are deliberately NOT
// restored so a resumed run can never replay a stale dead-subtree verdict
// past its logical-clock expiry.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/journal.h"
#include "core/cut_cache.h"
#include "core/measure.h"
#include "core/mining.h"
#include "core/selection.h"
#include "core/types.h"
#include "core/vantage.h"
#include "obs/profile.h"

namespace govdns::core {

struct StudyCheckpointOptions {
  // Measurement results are journaled every `batch_size` domains; a kill
  // mid-round loses at most one batch of work.
  size_t batch_size = 1024;
  // false: fresh-run semantics — existing frames are wiped at Bind time.
  // true: resume — phases load from the journal where the chain validates.
  bool resume = false;
  // Snapshot the shared cut cache after each batch (warm start on resume).
  bool snapshot_cut_cache = true;
};

// Resume/recovery bookkeeping, beyond the journal's own frame stats.
struct StudyCheckpointStats {
  int64_t phases_loaded = 0;  // selection/mining restored from the journal
  int64_t phases_saved = 0;
  int64_t batches_loaded = 0;
  int64_t batches_saved = 0;
  int64_t results_loaded = 0;  // measured domains restored
  int64_t cache_entries_restored = 0;
  int64_t decode_rejects = 0;  // frame valid but payload failed to decode
};

class StudyCheckpoint {
 public:
  // `config_fingerprint` identifies the world/config the journal belongs to
  // (the harness mixes in world seed, scale, and years); Bind() later mixes
  // in the study's own config identity. A journal written under a different
  // fingerprint is rejected wholesale on load.
  StudyCheckpoint(std::string dir, uint64_t config_fingerprint,
                  StudyCheckpointOptions options = StudyCheckpointOptions());

  // Called by Study::AttachCheckpoint before any journal IO: finalizes the
  // fingerprint and applies fresh-run wiping when resume is off.
  void Bind(uint64_t study_fingerprint);

  void set_fault_plan(const ckpt::CkptFaultPlan& plan);

  // --- Phase snapshots -----------------------------------------------------
  struct SelectionSnapshot {
    std::vector<SeedDomain> seeds;
    SelectionStats stats;
    std::vector<obs::PhaseRecord> profile;
  };
  std::optional<SelectionSnapshot> TryLoadSelection();
  void SaveSelection(const SelectionSnapshot& snap);

  struct MiningSnapshot {
    MinedDataset dataset;
    std::vector<obs::PhaseRecord> profile;
  };
  // `expected_config` guards against a stale journal whose fingerprint
  // happens to collide: the deserialized dataset must carry it verbatim.
  std::optional<MiningSnapshot> TryLoadMining(const MiningConfig& expected_config);
  void SaveMining(const MiningSnapshot& snap);

  // --- Intra-phase journal for active measurement --------------------------
  // Loads the longest valid prefix of batch frames; the returned results
  // cover query-list indices [0, size) contiguously. Stops (cleanly) at the
  // first missing/invalid/discontiguous frame.
  std::vector<MeasurementResult> LoadActiveBatches(size_t expected_total);
  // Journals one completed batch starting at `begin_index`.
  void AppendActiveBatch(size_t begin_index,
                         const std::vector<MeasurementResult>& results);

  void SaveCutCacheSnapshot(const SharedCutCache& cache);
  // Restores reachable entries only; returns the count restored.
  size_t RestoreCutCache(SharedCutCache* cache);

  // Degradation summary of the measurement phase (DESIGN.md §6g): journaled
  // as its own frame after the last batch so a resumed run carries the
  // quarantine verdicts forward without re-deriving them. Chained into the
  // batch chain (the report frame then chains after it).
  struct QuarantineSnapshot {
    uint64_t total = 0;  // quarantined domains
    uint64_t hang = 0;
    uint64_t blackhole = 0;
    uint64_t budget_exceeded = 0;
    uint64_t watchdog_cancelled = 0;
    uint64_t vantage_lost = 0;

    friend bool operator==(const QuarantineSnapshot&,
                           const QuarantineSnapshot&) = default;
  };
  std::optional<QuarantineSnapshot> TryLoadQuarantine();
  void SaveQuarantine(const QuarantineSnapshot& snap);

  void SaveReportJson(const std::string& json);
  std::optional<std::string> TryLoadReportJson();

  // Vantage-shard summary (DESIGN.md §6k): the frame a shard commits last,
  // carrying its identity and per-country health for the parent's merge.
  // Self-contained (parent CRC 0) so the supervisor can load it with a bare
  // ckpt::Journal — no chain state crosses the process boundary; integrity
  // rides on the frame CRC and the journal fingerprint. Committed through
  // this journal, so fault plans count it as a write point like any other.
  void SaveVantage(const VantageSummary& summary);
  // Load-and-verify on resume: nullopt when absent/invalid (recompute).
  std::optional<VantageSummary> TryLoadVantage();

  const StudyCheckpointOptions& options() const { return options_; }
  const ckpt::JournalStats& journal_stats() const { return journal_.stats(); }
  const StudyCheckpointStats& stats() const { return stats_; }
  // One-line JSON stats document (journal + resume counters) for the CLI.
  std::string StatsJson() const;

 private:
  ckpt::Journal journal_;
  StudyCheckpointOptions options_;
  StudyCheckpointStats stats_;
  uint64_t base_fingerprint_;
  bool bound_ = false;
  // Chain state: CRCs of the last accepted/committed frame per phase.
  bool have_selection_ = false;
  bool have_mining_ = false;
  uint32_t selection_crc_ = 0;
  uint32_t mining_crc_ = 0;
  uint32_t chain_crc_ = 0;  // last batch (or mining, before any batch)
  size_t next_batch_ = 0;
  size_t results_journaled_ = 0;
};

}  // namespace govdns::core
