// Consolidated study report: every §IV analysis over one Study, gathered
// into a single structure plus a human-readable rendering. This is the
// highest-level convenience API — examples and downstream tooling that just
// want "the numbers" use this instead of calling each analyzer.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/providers.h"
#include "core/study.h"
#include "obs/profile.h"

namespace govdns::core {

// Study-level aggregation of the resilience bookkeeping each measurement
// carries (MeasurementResult::query_stats / degraded): how much adversity
// the network dealt and how much query effort the armor spent absorbing it.
// Fully deterministic for a given world seed; ToJson() is byte-stable so
// two same-seed runs can be compared for identity.
struct ResilienceReport {
  int64_t domains = 0;
  int64_t degraded_domains = 0;   // per-domain budget cut these short
  ResolverCounters totals;        // summed per-outcome counters
  uint64_t max_queries_one_domain = 0;
  double avg_queries_per_domain = 0.0;
  // Logical (transport-clock) time: the sum and max of per-domain
  // measurement durations. Deterministic like the counters.
  uint64_t total_logical_ms = 0;
  uint64_t max_logical_ms_one_domain = 0;

  std::string ToJson() const;

  friend bool operator==(const ResilienceReport&,
                         const ResilienceReport&) = default;
};

ResilienceReport BuildResilienceReport(const ActiveDataset& dataset);

// Degradation/coverage accounting (DESIGN.md §6g): which measured domains
// were quarantined, why (QuarantineReason taxonomy), and how coverage breaks
// down per country. A healthy run has quarantined == 0 and coverage == 1.
// Deterministic for a given world seed and budget configuration.
struct QuarantineReport {
  int64_t total_domains = 0;
  int64_t quarantined = 0;
  int64_t hang = 0;
  int64_t blackhole = 0;
  int64_t budget_exceeded = 0;
  int64_t watchdog_cancelled = 0;
  int64_t vantage_lost = 0;
  // Share of the query list with a full-fidelity (non-quarantined) result.
  double coverage = 1.0;
  struct CountryRow {
    std::string code;
    int64_t domains = 0;
    int64_t quarantined = 0;

    friend bool operator==(const CountryRow&, const CountryRow&) = default;
  };
  // Countries with at least one quarantined domain, in metas order.
  std::vector<CountryRow> by_country;

  friend bool operator==(const QuarantineReport&,
                         const QuarantineReport&) = default;
};

QuarantineReport BuildQuarantineReport(const ActiveDataset& dataset);

struct StudyReport {
  // §III: pipeline funnel.
  SelectionStats selection;
  std::vector<YearlyCounts> pdns_per_year;     // Figs. 2-3
  ActiveDataset::Funnel funnel;

  // §IV-A.
  ReplicationSummary replication;              // Figs. 8-9
  std::vector<DiversityRow> diversity;         // Table I
  std::vector<D1nsChurnRow> d1ns_churn;        // Fig. 6
  std::vector<PrivateShareRow> private_share;  // Fig. 7

  // §IV-B.
  ProviderYearTable providers_first_year;      // Table II/III inputs
  ProviderYearTable providers_last_year;

  // §IV-C.
  DelegationSummary delegations;               // Fig. 10
  HijackSummary hijack;                        // Figs. 11-12, §IV-D

  // §IV-D.
  ConsistencySummary consistency;              // Figs. 13-14

  // Measurement-infrastructure health (not a paper figure: quantifies the
  // §III-B transient-vs-defective distinction for this run).
  ResilienceReport resilience;

  // Coverage annotations for degraded runs (DESIGN.md §6g): empty/1.0 when
  // the run was healthy.
  QuarantineReport quarantine;

  // Per-phase profile: the study's stages followed by each analyzer run by
  // BuildReport. Exported with logical_ms only — wall_ms stays diagnostic.
  std::vector<obs::PhaseRecord> profile;
};

// Runs every analysis over a completed study (all three stages must have
// run). `asn_db`, `psl`, `registrar` come from the study's inputs.
StudyReport BuildReport(Study& study,
                        const std::vector<std::string>& diversity_countries);

// Renders the report as the paper's §IV narrative with measured numbers.
void PrintReport(const StudyReport& report, std::ostream& os);

}  // namespace govdns::core
