#include "core/mining.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "util/stats.h"

namespace govdns::core {

PdnsMiner::PdnsMiner(const pdns::PdnsDatabase* db, MiningConfig config)
    : db_(db), config_(config) {
  GOVDNS_CHECK(db != nullptr);
  GOVDNS_CHECK(config.first_year <= config.last_year);
}

bool PdnsMiner::LooksDisposable(const dns::Name& name) {
  if (name.IsRoot()) return false;
  const std::string& label = name.Label(0);
  // Machine-generated pattern: "...-xxxxxx" with a hex tail.
  if (label.size() < 8) return false;
  if (label[label.size() - 7] != '-') return false;
  for (size_t i = label.size() - 6; i < label.size(); ++i) {
    char c = label[i];
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

MinedDataset PdnsMiner::Mine(const std::vector<SeedDomain>& seeds) {
  MinedDataset out;
  out.config = config_;
  out.stats.seeds = static_cast<int64_t>(seeds.size());
  const int years = config_.year_count();

  // §III-C stability predicate: the first-to-last-seen *gap* must reach the
  // threshold. Deliberately not LengthDays(), which is one day longer (see
  // mining.h).
  auto stable = [this](const pdns::PdnsEntry& entry) {
    return entry.seen.last - entry.seen.first >= config_.stability_days;
  };

  std::unordered_map<std::string, int32_t> intern;
  auto intern_ns = [&](const std::string& ns) -> int32_t {
    auto [it, inserted] =
        intern.emplace(ns, static_cast<int32_t>(out.ns_names.size()));
    if (inserted) out.ns_names.push_back(ns);
    return it->second;
  };

  // Precomputed year boundaries.
  std::vector<util::CivilDay> year_start(years), year_end(years);
  for (int y = 0; y < years; ++y) {
    year_start[y] = util::YearStart(config_.first_year + y);
    year_end[y] = util::YearEnd(config_.first_year + y);
  }

  for (size_t s = 0; s < seeds.size(); ++s) {
    // All NS entries (unfiltered: the active-window check uses raw
    // sightings, as the paper's FQDN extraction did).
    pdns::Query query;
    query.type = dns::RRType::kNS;
    query.min_duration_days = 1;
    auto entries = db_->WildcardSearch(seeds[s].d_gov, query);

    // Group contiguous runs by owner (WildcardSearch returns canonical
    // order, so equal names are adjacent).
    size_t i = 0;
    while (i < entries.size()) {
      size_t j = i;
      while (j < entries.size() && entries[j].rrname == entries[i].rrname) ++j;

      MinedDomain domain;
      domain.name = entries[i].rrname;
      domain.country = seeds[s].country;
      domain.seed_index = static_cast<int>(s);
      domain.disposable = LooksDisposable(domain.name);
      domain.years.resize(years);

      for (size_t k = i; k < j; ++k) {
        const pdns::PdnsEntry& entry = entries[k];
        ++out.stats.entries_scanned;
        const bool is_stable = stable(entry);
        if (!is_stable) ++out.stats.entries_unstable;
        if (entry.seen.Overlaps(config_.active_window) &&
            (is_stable || !config_.require_stable_for_active)) {
          domain.in_active_window = true;
        }
        if (!is_stable) continue;
        for (int y = 0; y < years; ++y) {
          if (entry.seen.last < year_start[y] || entry.seen.first > year_end[y])
            continue;
          domain.years[y].ns_ids.push_back(intern_ns(entry.rdata));
        }
      }

      // Mode of daily counts, per year (paper Fig. 5). A sweep over the
      // +1/-1 deltas of each stable entry's in-year interval.
      for (int y = 0; y < years; ++y) {
        if (domain.years[y].ns_ids.empty()) continue;
        std::map<util::CivilDay, int> delta;
        for (size_t k = i; k < j; ++k) {
          const pdns::PdnsEntry& entry = entries[k];
          if (!stable(entry)) continue;
          util::CivilDay from = std::max(entry.seen.first, year_start[y]);
          util::CivilDay to = std::min(entry.seen.last, year_end[y]);
          if (from > to) continue;
          ++delta[from];
          --delta[to + 1];
        }
        // Walk the sweep, collecting (count, days) runs; mode over days
        // with at least one active record.
        std::map<int, int64_t> days_at_count;
        int current = 0;
        util::CivilDay prev = year_start[y];
        for (const auto& [day, d] : delta) {
          if (current > 0) days_at_count[current] += day - prev;
          current += d;
          prev = day;
        }
        int value = 0;
        switch (config_.statistic) {
          case YearlyStatistic::kMode: {
            int64_t best_days = 0;
            for (const auto& [count, day_total] : days_at_count) {
              if (day_total > best_days) {  // ties -> smaller (map order)
                best_days = day_total;
                value = count;
              }
            }
            break;
          }
          case YearlyStatistic::kMin:
            if (!days_at_count.empty()) value = days_at_count.begin()->first;
            break;
          case YearlyStatistic::kMax:
            if (!days_at_count.empty()) value = days_at_count.rbegin()->first;
            break;
          case YearlyStatistic::kMean: {
            int64_t days = 0, weighted = 0;
            for (const auto& [count, day_total] : days_at_count) {
              days += day_total;
              weighted += count * day_total;
            }
            if (days > 0) {
              value = static_cast<int>(
                  std::lround(double(weighted) / double(days)));
            }
            break;
          }
        }
        domain.years[y].mode_ns_count = value;
        auto& ids = domain.years[y].ns_ids;
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      }

      ++out.stats.domains;
      if (domain.disposable) ++out.stats.domains_disposable;
      if (domain.in_active_window) ++out.stats.domains_in_active_window;
      out.domains.push_back(std::move(domain));
      i = j;
    }
  }
  return out;
}

std::vector<dns::Name> PdnsMiner::ActiveQueryList(const MinedDataset& dataset) {
  std::vector<dns::Name> out;
  for (const MinedDomain& domain : dataset.domains) {
    if (!domain.in_active_window) continue;
    if (dataset.config.filter_disposable && domain.disposable) continue;
    out.push_back(domain.name);
  }
  return out;
}

std::vector<YearlyCounts> CountPerYear(const MinedDataset& dataset) {
  const int years = dataset.config.year_count();
  std::vector<YearlyCounts> out(years);
  std::vector<std::set<int>> countries(years);
  std::vector<std::set<int32_t>> nameservers(years);
  for (int y = 0; y < years; ++y) {
    out[y].year = dataset.config.first_year + y;
  }
  for (const MinedDomain& domain : dataset.domains) {
    for (int y = 0; y < years; ++y) {
      if (!domain.HasData(y)) continue;
      ++out[y].domains;
      countries[y].insert(domain.country);
      nameservers[y].insert(domain.years[y].ns_ids.begin(),
                            domain.years[y].ns_ids.end());
    }
  }
  for (int y = 0; y < years; ++y) {
    out[y].countries = static_cast<int64_t>(countries[y].size());
    out[y].nameservers = static_cast<int64_t>(nameservers[y].size());
  }
  return out;
}

std::vector<D1nsChurnRow> D1nsChurn(const MinedDataset& dataset) {
  const int years = dataset.config.year_count();
  // Per year: the set of d_1NS (by domain index).
  std::vector<std::set<size_t>> d1ns(years);
  std::vector<std::set<size_t>> has_data(years);
  for (size_t i = 0; i < dataset.domains.size(); ++i) {
    const MinedDomain& domain = dataset.domains[i];
    for (int y = 0; y < years; ++y) {
      if (!domain.HasData(y)) continue;
      has_data[y].insert(i);
      if (domain.years[y].mode_ns_count == 1) d1ns[y].insert(i);
    }
  }
  std::vector<D1nsChurnRow> out;
  for (int y = 0; y < years; ++y) {
    D1nsChurnRow row;
    row.year = dataset.config.first_year + y;
    row.d1ns_total = static_cast<int64_t>(d1ns[y].size());
    if (y > 0 && !d1ns[y].empty()) {
      int64_t overlap_2011 = 0, fresh = 0;
      for (size_t i : d1ns[y]) {
        if (d1ns[0].contains(i)) ++overlap_2011;
        if (!d1ns[y - 1].contains(i)) ++fresh;
      }
      row.pct_overlap_2011 = double(overlap_2011) / double(d1ns[y].size());
      row.pct_new_vs_prev = double(fresh) / double(d1ns[y].size());
    }
    if (y > 0 && !d1ns[0].empty()) {
      int64_t gone = 0;
      for (size_t i : d1ns[0]) {
        if (!has_data[y].contains(i)) ++gone;
      }
      row.pct_2011_cohort_gone = double(gone) / double(d1ns[0].size());
    }
    out.push_back(row);
  }
  return out;
}

std::vector<PrivateShareRow> PrivateShare(
    const MinedDataset& dataset, const std::vector<SeedDomain>& seeds) {
  const int years = dataset.config.year_count();
  std::vector<int64_t> d1ns_total(years, 0), d1ns_private(years, 0);
  std::vector<int64_t> all_total(years, 0), all_private(years, 0);

  // Cache: interned ns id -> parsed name (for the subdomain check).
  std::vector<std::optional<bool>> scratch;
  for (const MinedDomain& domain : dataset.domains) {
    const dns::Name& d_gov = seeds[domain.seed_index].d_gov;
    for (int y = 0; y < years; ++y) {
      if (!domain.HasData(y)) continue;
      bool all_inside = true;
      for (int32_t id : domain.years[y].ns_ids) {
        auto ns = dns::Name::Parse(dataset.NsName(id));
        if (!ns.ok() || !ns->IsSubdomainOf(d_gov)) {
          all_inside = false;
          break;
        }
      }
      ++all_total[y];
      if (all_inside) ++all_private[y];
      if (domain.years[y].mode_ns_count == 1) {
        ++d1ns_total[y];
        if (all_inside) ++d1ns_private[y];
      }
    }
  }
  std::vector<PrivateShareRow> out;
  for (int y = 0; y < years; ++y) {
    PrivateShareRow row;
    row.year = dataset.config.first_year + y;
    if (d1ns_total[y] > 0) {
      row.pct_d1ns_private = double(d1ns_private[y]) / double(d1ns_total[y]);
    }
    if (all_total[y] > 0) {
      row.pct_all_private = double(all_private[y]) / double(all_total[y]);
    }
    out.push_back(row);
  }
  return out;
}

}  // namespace govdns::core
