#include "core/mining.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <iterator>
#include <limits>
#include <optional>
#include <set>
#include <span>
#include <string_view>
#include <thread>
#include <utility>

#include "pdns/snapshot_io.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/stats.h"

namespace govdns::core {

uint64_t MiningConfigFingerprint(const MiningConfig& config) {
  uint64_t state = 0x676f76646e73636bull;  // arbitrary non-zero start
  auto mix = [&state](uint64_t v) {
    state ^= v + 0x9E3779B97F4A7C15ull + (state << 6) + (state >> 2);
    uint64_t s = state;
    state = util::SplitMix64(s);
  };
  mix(static_cast<uint64_t>(config.first_year));
  mix(static_cast<uint64_t>(config.last_year));
  mix(static_cast<uint64_t>(config.stability_days));
  mix(static_cast<uint64_t>(config.statistic));
  mix(static_cast<uint64_t>(config.active_window.first));
  mix(static_cast<uint64_t>(config.active_window.last));
  mix(config.filter_disposable ? 1 : 2);
  mix(config.require_stable_for_active ? 1 : 2);
  return state;
}

PdnsMiner::PdnsMiner(const pdns::PdnsDatabase* db, MiningConfig config,
                     MinerOptions options)
    : db_(db), config_(config), options_(options) {
  GOVDNS_CHECK(db != nullptr);
  GOVDNS_CHECK(config.first_year <= config.last_year);
}

PdnsMiner::PdnsMiner(MiningConfig config, MinerOptions options)
    : db_(nullptr), config_(config), options_(options) {
  GOVDNS_CHECK(config.first_year <= config.last_year);
}

bool PdnsMiner::LooksDisposable(const dns::Name& name) {
  if (name.IsRoot()) return false;
  const std::string& label = name.Label(0);
  // Machine-generated pattern: "...-xxxxxx" with a hex tail.
  if (label.size() < 8) return false;
  if (label[label.size() - 7] != '-') return false;
  for (size_t i = label.size() - 6; i < label.size(); ++i) {
    char c = label[i];
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

namespace {

// The one predicate deciding which NS sightings enter the global intern
// table: stable NS entries whose interval touches the studied year range
// [years_first, years_last]. The intern pre-pass collects exactly these
// rdata strings and the shard pass resolves exactly these through the
// table, so one shared function is what guarantees every collected name is
// used and every used name was collected (the renumber pass CHECKs it).
// Years are contiguous, so overlapping the whole range == overlapping some
// year.
template <typename Entry>
bool InternEligible(const MiningConfig& config, util::CivilDay years_first,
                    util::CivilDay years_last, const Entry& entry) {
  return entry.type == dns::RRType::kNS &&
         entry.seen.last - entry.seen.first >= config.stability_days &&
         entry.seen.last >= years_first && entry.seen.first <= years_last;
}

// The global NS-name intern table, built once, up front, in parallel: every
// unique stable NS rdata in plain byte-sorted order, with a two-byte-prefix
// bucket index so a lookup binary-searches a short run instead of the whole
// table (~5 string compares instead of ~log2(n) at world scale). Entries
// are string_views into the snapshot substrate — the frozen entry array or
// the mmapped rdata blob, both immutable for the duration of the pass — so
// building and probing the table never copies a string. Ids are positions
// in sorted order; the fold's renumber pass converts them to first-seen
// order at the end (DESIGN.md §6j).
class NsNameTable {
 public:
  // Merges per-worker sorted, deduplicated view lists into the table.
  void Build(std::vector<std::vector<std::string_view>> worker_tables) {
    std::vector<std::string_view> merged;
    for (std::vector<std::string_view>& t : worker_tables) {
      if (t.empty()) continue;
      if (merged.empty()) {
        merged = std::move(t);
        continue;
      }
      std::vector<std::string_view> tmp;
      tmp.reserve(merged.size() + t.size());
      std::merge(merged.begin(), merged.end(), t.begin(), t.end(),
                 std::back_inserter(tmp));
      tmp.erase(std::unique(tmp.begin(), tmp.end()), tmp.end());
      merged.swap(tmp);
    }
    sorted_ = std::move(merged);
    GOVDNS_CHECK(sorted_.size() <=
                 static_cast<size_t>(std::numeric_limits<int32_t>::max()));
    bucket_lo_.assign(kBucketCount + 1, 0);
    for (std::string_view s : sorted_) ++bucket_lo_[Bucket(s) + 1];
    for (size_t b = 1; b <= kBucketCount; ++b) {
      bucket_lo_[b] += bucket_lo_[b - 1];
    }
  }

  // Sorted id of `ns`, or -1 when absent. Read-only and data-race free:
  // every mining worker probes the same immutable table.
  int32_t Find(std::string_view ns) const {
    const uint32_t b = Bucket(ns);
    const auto first = sorted_.begin() + bucket_lo_[b];
    const auto last = sorted_.begin() + bucket_lo_[b + 1];
    const auto it = std::lower_bound(first, last, ns);
    if (it == last || *it != ns) return -1;
    return static_cast<int32_t>(it - sorted_.begin());
  }

  size_t size() const { return sorted_.size(); }
  std::string_view name(size_t id) const { return sorted_[id]; }

 private:
  // First two bytes of the string. Monotonic w.r.t. byte order because
  // hostname rdata never contains '\0', so a short string's implicit zero
  // padding sorts it before every longer string sharing its prefix.
  static constexpr size_t kBucketCount = 1 << 16;
  static uint32_t Bucket(std::string_view s) {
    const uint32_t b0 = s.empty() ? 0 : static_cast<unsigned char>(s[0]);
    const uint32_t b1 = s.size() < 2 ? 0 : static_cast<unsigned char>(s[1]);
    return (b0 << 8) | b1;
  }

  std::vector<std::string_view> sorted_;
  std::vector<uint32_t> bucket_lo_;  // kBucketCount + 1 fenceposts
};

// Per-worker reusable scratch, arena-backed: one bump allocator is Reset()
// at the top of every seed and all per-seed transients — the Fig. 5 mode
// sweep's +1/-1 deltas, the aggregated (count -> days) histogram, the
// pre-pass's per-seed rdata views — are ArenaVecs carved from it. After the
// first seed sizes the arena, a worker's whole load runs without touching
// the heap (the per-seed vector churn the 10x worldgen sweep exposed).
// `seen_mark` is the first-use detector for the renumber pass: stamped per
// seed (epoch trick) so it never needs clearing between seeds.
struct SweepScratch {
  util::BumpArena arena;
  std::vector<uint32_t> seen_mark;  // table-sized; value == stamp -> seen
  uint32_t stamp = 0;

  explicit SweepScratch(size_t table_size) : seen_mark(table_size, 0) {}

  void BeginSeed() {
    arena.Reset();
    if (++stamp == 0) {  // wrapped: invalidate stale marks the hard way
      std::fill(seen_mark.begin(), seen_mark.end(), 0u);
      stamp = 1;
    }
  }
};

// Output of mining one seed. ns ids are global sorted-table ids;
// `first_use` records them in first-use order so the fold's renumber pass
// can replay seed-order first appearances without re-hashing a single
// string.
struct SeedShard {
  std::vector<MinedDomain> domains;
  std::vector<int32_t> first_use;  // sorted-table ids, first-use order
  MiningStats stats;               // partial sums (seeds field unused)
};

// The yearly statistic over the aggregated, count-ascending histogram.
// Identical outcomes to the old std::map walk: ties pick the smaller count.
template <typename Hist>  // any range of (count, day_total) pairs
int YearlyValue(YearlyStatistic statistic, const Hist& days_at_count) {
  int value = 0;
  switch (statistic) {
    case YearlyStatistic::kMode: {
      int64_t best_days = 0;
      for (const auto& [count, day_total] : days_at_count) {
        if (day_total > best_days) {  // ties -> smaller (ascending order)
          best_days = day_total;
          value = count;
        }
      }
      break;
    }
    case YearlyStatistic::kMin:
      if (!days_at_count.empty()) value = days_at_count.front().first;
      break;
    case YearlyStatistic::kMax:
      if (!days_at_count.empty()) value = days_at_count.back().first;
      break;
    case YearlyStatistic::kMean: {
      int64_t days = 0, weighted = 0;
      for (const auto& [count, day_total] : days_at_count) {
        days += day_total;
        weighted += count * day_total;
      }
      if (days > 0) {
        value = static_cast<int>(std::lround(double(weighted) / double(days)));
      }
      break;
    }
  }
  return value;
}

// Mines one seed against a frozen snapshot — owning (PdnsSnapshot) or
// memory-mapped (MappedPdnsSnapshot); both expose the same lookup API and
// entry field names, differing only in whether entries come out as
// PdnsEntry refs or PdnsEntryView values. Reads only shared immutable state
// and writes only `shard`/`scratch`, so any worker may run any seed.
template <typename Snapshot>
void MineSeed(const MiningConfig& config, const Snapshot& snapshot,
              const NsNameTable& table, const SeedDomain& seed, int seed_index,
              const std::vector<util::CivilDay>& year_start,
              const std::vector<util::CivilDay>& year_end, SeedShard& shard,
              SweepScratch& scratch) {
  const int years = config.year_count();
  const util::CivilDay years_first = year_start.front();
  const util::CivilDay years_last = year_end.back();

  // §III-C stability predicate: the first-to-last-seen *gap* must reach the
  // threshold. Deliberately not LengthDays(), which is one day longer (see
  // mining.h).
  auto stable = [&config](const auto& entry) {
    return entry.seen.last - entry.seen.first >= config.stability_days;
  };
  auto is_ns = [](const auto& entry) {
    return entry.type == dns::RRType::kNS;
  };

  scratch.BeginSeed();
  util::ArenaVec<std::pair<util::CivilDay, int>> delta(&scratch.arena);
  util::ArenaVec<std::pair<int, int64_t>> days_at_count(&scratch.arena);

  // Resolves an intern-eligible rdata to its global sorted id (the pre-pass
  // collected every such string, so a miss is a broken invariant, not a
  // data condition) and records the seed's first use of each id — the raw
  // material of the fold's renumber pass.
  auto resolve_ns = [&](std::string_view ns) -> int32_t {
    const int32_t gid = table.Find(ns);
    GOVDNS_CHECK(gid >= 0);
    if (scratch.seen_mark[gid] != scratch.stamp) {
      scratch.seen_mark[gid] = scratch.stamp;
      shard.first_use.push_back(gid);
    }
    return gid;
  };

  // One zero-copy owner walk over the subtree; entries of an owner are a
  // contiguous span (no per-seed result vector as the map-backed search
  // returned). All NS entries are considered (unfiltered: the active-window
  // check uses raw sightings, as the paper's FQDN extraction did).
  const auto [name_lo, name_hi] = snapshot.WildcardNameRange(seed.d_gov);
  for (size_t n = name_lo; n < name_hi; ++n) {
    const auto entries = snapshot.entries(n);
    if (std::none_of(entries.begin(), entries.end(), is_ns)) continue;

    MinedDomain domain;
    domain.name = snapshot.name(n);
    domain.country = seed.country;
    domain.seed_index = seed_index;
    domain.disposable = PdnsMiner::LooksDisposable(domain.name);
    domain.years.resize(years);

    for (const auto& entry : entries) {
      if (!is_ns(entry)) continue;
      ++shard.stats.entries_scanned;
      const bool is_stable = stable(entry);
      if (!is_stable) ++shard.stats.entries_unstable;
      if (entry.seen.Overlaps(config.active_window) &&
          (is_stable || !config.require_stable_for_active)) {
        domain.in_active_window = true;
      }
      if (!is_stable) continue;
      if (entry.seen.last < years_first || entry.seen.first > years_last) {
        continue;  // outside every studied year; was never interned
      }
      // One table probe per sighting (the old per-shard map looked the
      // string up once per overlapping year, building a std::string key
      // each time).
      const int32_t gid = resolve_ns(entry.rdata);
      for (int y = 0; y < years; ++y) {
        if (entry.seen.last < year_start[y] || entry.seen.first > year_end[y])
          continue;
        domain.years[y].ns_ids.push_back(gid);
      }
    }

    // Mode of daily counts, per year (paper Fig. 5). A sweep over the
    // +1/-1 deltas of each stable entry's in-year interval.
    for (int y = 0; y < years; ++y) {
      if (domain.years[y].ns_ids.empty()) continue;
      delta.clear();
      for (const auto& entry : entries) {
        if (!is_ns(entry) || !stable(entry)) continue;
        util::CivilDay from = std::max(entry.seen.first, year_start[y]);
        util::CivilDay to = std::min(entry.seen.last, year_end[y]);
        if (from > to) continue;
        delta.emplace_back(from, 1);
        delta.emplace_back(to + 1, -1);
      }
      std::sort(delta.begin(), delta.end());

      // Walk the sweep, collecting (count, days) runs; then aggregate equal
      // counts so the histogram is count-ascending with unique keys.
      days_at_count.clear();
      int current = 0;
      util::CivilDay prev = year_start[y];
      size_t p = 0;
      while (p < delta.size()) {
        const util::CivilDay day = delta[p].first;
        int d = 0;
        while (p < delta.size() && delta[p].first == day) {
          d += delta[p].second;
          ++p;
        }
        if (current > 0) days_at_count.emplace_back(current, day - prev);
        current += d;
        prev = day;
      }
      std::sort(days_at_count.begin(), days_at_count.end());
      size_t w = 0;
      for (size_t r = 0; r < days_at_count.size(); ++r) {
        if (w > 0 && days_at_count[w - 1].first == days_at_count[r].first) {
          days_at_count[w - 1].second += days_at_count[r].second;
        } else {
          days_at_count[w++] = days_at_count[r];
        }
      }
      days_at_count.resize_down(w);

      domain.years[y].mode_ns_count =
          YearlyValue(config.statistic, days_at_count);
      // Dedupe by sorted-table id; the fold's renumber pass re-sorts after
      // converting to first-seen ids.
      auto& ids = domain.years[y].ns_ids;
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    }

    ++shard.stats.domains;
    if (domain.disposable) ++shard.stats.domains_disposable;
    if (domain.in_active_window) ++shard.stats.domains_in_active_window;
    shard.domains.push_back(std::move(domain));
  }
}

// The intern pre-pass body of one worker: collect the unique intern-eligible
// rdata views of whole seeds (deduped per seed through arena scratch, then
// once more per worker), leaving `acc` sorted and unique. The final k-way
// merge across workers happens serially in MineImpl — it is the only serial
// string work left in the pipeline.
template <typename Snapshot>
void CollectInternViews(const MiningConfig& config, const Snapshot& snapshot,
                        const std::vector<SeedDomain>& seeds,
                        std::atomic<size_t>& next,
                        std::vector<std::string_view>& acc) {
  const util::CivilDay years_first = util::YearStart(config.first_year);
  const util::CivilDay years_last = util::YearEnd(config.last_year);
  util::BumpArena arena;
  for (;;) {
    const size_t s = next.fetch_add(1, std::memory_order_relaxed);
    if (s >= seeds.size()) break;
    const auto [lo, hi] = snapshot.WildcardNameRange(seeds[s].d_gov);
    arena.Reset();
    util::ArenaVec<std::string_view> local(&arena);
    for (const auto& entry : snapshot.EntriesInNameRange(lo, hi)) {
      if (InternEligible(config, years_first, years_last, entry)) {
        local.push_back(std::string_view(entry.rdata));
      }
    }
    std::sort(local.begin(), local.end());
    std::string_view* unique_end = std::unique(local.begin(), local.end());
    acc.insert(acc.end(), local.begin(), unique_end);
  }
  std::sort(acc.begin(), acc.end());
  acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
}

// Runs `body(worker_index)` on `workers` threads (inline when workers == 1).
void RunOnPool(int workers, const std::function<void(int)>& body) {
  if (workers <= 1) {
    body(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&body, w] { body(w); });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace

MinedDataset PdnsMiner::Mine(const std::vector<SeedDomain>& seeds) {
  GOVDNS_CHECK(db_ != nullptr);
  // --- Phase 1: freeze. One O(entries) flattening buys every seed a
  // binary-searched zero-copy subtree scan instead of a copied vector.
  pdns::PdnsSnapshot snapshot;
  {
    std::optional<obs::PhaseProfiler::Scope> scope;
    if (options_.profiler != nullptr) {
      scope.emplace(options_.profiler, "mining.freeze");
    }
    snapshot = db_->Freeze();
    if (scope) scope->set_items(static_cast<int64_t>(snapshot.entry_count()));
  }
  return MineImpl(snapshot, seeds);
}

MinedDataset PdnsMiner::MineSnapshot(const pdns::PdnsSnapshot& snapshot,
                                     const std::vector<SeedDomain>& seeds) {
  RecordSnapshotAttach(snapshot.entry_count());
  return MineImpl(snapshot, seeds);
}

MinedDataset PdnsMiner::MineSnapshot(const pdns::MappedPdnsSnapshot& snapshot,
                                     const std::vector<SeedDomain>& seeds) {
  RecordSnapshotAttach(snapshot.entry_count());
  return MineImpl(snapshot, seeds);
}

void PdnsMiner::RecordSnapshotAttach(size_t entries) {
  // A pre-frozen substrate skips the O(entries) flattening, but the profile
  // schema must not depend on the substrate: emit the same "mining.freeze"
  // row the database path does (the attach is the freeze, at O(1) cost) so
  // reports stay byte-identical across substrates.
  if (options_.profiler == nullptr) return;
  obs::PhaseProfiler::Scope scope(options_.profiler, "mining.freeze");
  scope.set_items(static_cast<int64_t>(entries));
}

template <typename Snapshot>
MinedDataset PdnsMiner::MineImpl(const Snapshot& snapshot,
                                 const std::vector<SeedDomain>& seeds) {
  MinedDataset out;
  out.config = config_;
  out.stats.seeds = static_cast<int64_t>(seeds.size());
  const int years = config_.year_count();

  // Precomputed year boundaries (shared, immutable).
  std::vector<util::CivilDay> year_start(years), year_end(years);
  for (int y = 0; y < years; ++y) {
    year_start[y] = util::YearStart(config_.first_year + y);
    year_end[y] = util::YearEnd(config_.first_year + y);
  }

  int workers = options_.workers > 0
                    ? options_.workers
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  if (static_cast<size_t>(workers) > seeds.size() && !seeds.empty()) {
    workers = static_cast<int>(seeds.size());
  }

  // --- Phase 2: intern pre-pass ("mining.fold.intern"). The global NS-name
  // table is built once, up front, in parallel: each worker sweeps whole
  // seeds collecting unique stable rdata views, and one serial k-way merge
  // ("mining.fold.intern.merge") canonicalizes them into the byte-sorted
  // table every mining shard then probes read-only. This is the piece that
  // used to run as the serial fold's hash replay after the shards finished;
  // hoisting it in front of the shard phase is what removed the serial
  // chokepoint (DESIGN.md §6j). Dispensers and per-worker accumulators sit
  // on their own cache lines so 8+ workers don't false-share hot state.
  NsNameTable table;
  {
    std::optional<obs::PhaseProfiler::Scope> scope;
    if (options_.profiler != nullptr) {
      scope.emplace(options_.profiler, "mining.fold.intern");
    }
    std::vector<util::CacheAligned<std::vector<std::string_view>>> acc(
        static_cast<size_t>(workers));
    util::CacheAligned<std::atomic<size_t>> next;
    RunOnPool(workers, [&](int w) {
      CollectInternViews(config_, snapshot, seeds, next.value,
                         acc[static_cast<size_t>(w)].value);
    });
    {
      std::optional<obs::PhaseProfiler::Scope> merge_scope;
      if (options_.profiler != nullptr) {
        merge_scope.emplace(options_.profiler, "mining.fold.intern.merge");
      }
      std::vector<std::vector<std::string_view>> worker_tables;
      worker_tables.reserve(acc.size());
      for (auto& a : acc) worker_tables.push_back(std::move(a.value));
      table.Build(std::move(worker_tables));
      if (merge_scope) {
        merge_scope->set_items(static_cast<int64_t>(table.size()));
      }
    }
    if (scope) scope->set_items(static_cast<int64_t>(table.size()));
  }

  // --- Phase 3: shard. An atomic dispenser (cache-line padded) hands whole
  // seeds to workers; each seed's output lands in its own slot with global
  // sorted-table ns ids, so which worker mined it cannot leave a trace in
  // the data.
  std::vector<SeedShard> shards(seeds.size());
  {
    std::optional<obs::PhaseProfiler::Scope> scope;
    if (options_.profiler != nullptr) {
      scope.emplace(options_.profiler, "mining.shard");
      scope->set_items(static_cast<int64_t>(seeds.size()));
    }
    util::CacheAligned<std::atomic<size_t>> next;
    RunOnPool(workers, [&](int) {
      SweepScratch scratch(table.size());
      for (;;) {
        const size_t s = next.value.fetch_add(1, std::memory_order_relaxed);
        if (s >= seeds.size()) break;
        MineSeed(config_, snapshot, table, seeds[s], static_cast<int>(s),
                 year_start, year_end, shards[s], scratch);
      }
    });
  }

  // --- Phase 4: fold. With interning hoisted into the pre-pass, the fold
  // is three cheap steps: a serial O(unique) renumber that restores the
  // first-seen seed-order ids a serial entry-major traversal would have
  // assigned (so exports stay byte-identical to the pre-pool miner at any
  // worker count), a parallel per-seed id rewrite + re-sort, and a parallel
  // concat with a commutative stats merge. Nothing in here hashes a string
  // or copies one more than once.
  {
    std::optional<obs::PhaseProfiler::Scope> scope;
    if (options_.profiler != nullptr) {
      scope.emplace(options_.profiler, "mining.fold");
    }

    // 4a ("mining.fold.renumber"): replay per-seed first-use lists in seed
    // order; the first seed to use a name names it. Pure integer work — the
    // strings were interned long ago.
    std::vector<int32_t> perm(table.size(), -1);
    {
      std::optional<obs::PhaseProfiler::Scope> sub;
      if (options_.profiler != nullptr) {
        sub.emplace(options_.profiler, "mining.fold.renumber");
        sub->set_items(static_cast<int64_t>(table.size()));
      }
      int32_t next_id = 0;
      for (const SeedShard& shard : shards) {
        for (const int32_t gid : shard.first_use) {
          if (perm[gid] < 0) perm[gid] = next_id++;
        }
      }
      // Every collected name must have been used (InternEligible is the
      // single predicate on both sides), so the permutation is total.
      GOVDNS_CHECK(static_cast<size_t>(next_id) == table.size());
      out.ns_names.resize(table.size());
      for (size_t i = 0; i < table.size(); ++i) {
        out.ns_names[static_cast<size_t>(perm[i])].assign(table.name(i));
      }
    }

    // 4b ("mining.fold.sort"): rewrite sorted-table ids to first-seen ids
    // and restore per-year sorted order. Independent per seed, so the pool
    // is reused; the result is canonical regardless of scheduling.
    {
      std::optional<obs::PhaseProfiler::Scope> sub;
      if (options_.profiler != nullptr) {
        sub.emplace(options_.profiler, "mining.fold.sort");
      }
      std::vector<util::CacheAligned<int64_t>> resorted(
          static_cast<size_t>(workers));
      util::CacheAligned<std::atomic<size_t>> next;
      RunOnPool(workers, [&](int w) {
        int64_t local = 0;
        for (;;) {
          const size_t s = next.value.fetch_add(1, std::memory_order_relaxed);
          if (s >= shards.size()) break;
          for (MinedDomain& domain : shards[s].domains) {
            for (YearState& year : domain.years) {
              for (int32_t& id : year.ns_ids) id = perm[id];
              // Monotonic rewrites (common: a seed whose names were first
              // seen in sorted order) leave the list sorted; skip then.
              if (!std::is_sorted(year.ns_ids.begin(), year.ns_ids.end())) {
                std::sort(year.ns_ids.begin(), year.ns_ids.end());
                ++local;
              }
            }
          }
        }
        resorted[static_cast<size_t>(w)].value = local;
      });
      if (sub) {
        int64_t total = 0;
        for (const auto& r : resorted) total += r.value;
        sub->set_items(total);  // deterministic: perm and lists are fixed
      }
    }

    // 4c ("mining.fold.concat"): place every seed's domains at its
    // precomputed offset — a parallel move, not a serial append — and fold
    // the commutative stats sums.
    {
      std::optional<obs::PhaseProfiler::Scope> sub;
      if (options_.profiler != nullptr) {
        sub.emplace(options_.profiler, "mining.fold.concat");
      }
      std::vector<size_t> offset(shards.size() + 1, 0);
      for (size_t s = 0; s < shards.size(); ++s) {
        const SeedShard& shard = shards[s];
        offset[s + 1] = offset[s] + shard.domains.size();
        out.stats.entries_scanned += shard.stats.entries_scanned;
        out.stats.entries_unstable += shard.stats.entries_unstable;
        out.stats.domains += shard.stats.domains;
        out.stats.domains_disposable += shard.stats.domains_disposable;
        out.stats.domains_in_active_window +=
            shard.stats.domains_in_active_window;
      }
      out.domains.resize(offset.back());
      util::CacheAligned<std::atomic<size_t>> next;
      RunOnPool(workers, [&](int) {
        for (;;) {
          const size_t s = next.value.fetch_add(1, std::memory_order_relaxed);
          if (s >= shards.size()) break;
          for (size_t i = 0; i < shards[s].domains.size(); ++i) {
            out.domains[offset[s] + i] = std::move(shards[s].domains[i]);
          }
        }
      });
      if (sub) sub->set_items(static_cast<int64_t>(out.domains.size()));
    }
    if (scope) scope->set_items(static_cast<int64_t>(out.ns_names.size()));
  }
  return out;
}

std::vector<dns::Name> PdnsMiner::ActiveQueryList(const MinedDataset& dataset) {
  std::vector<dns::Name> out;
  for (const MinedDomain& domain : dataset.domains) {
    if (!domain.in_active_window) continue;
    if (dataset.config.filter_disposable && domain.disposable) continue;
    out.push_back(domain.name);
  }
  return out;
}

std::vector<int> PdnsMiner::ActiveQueryCountries(const MinedDataset& dataset) {
  std::vector<int> out;
  for (const MinedDomain& domain : dataset.domains) {
    if (!domain.in_active_window) continue;
    if (dataset.config.filter_disposable && domain.disposable) continue;
    out.push_back(domain.country);
  }
  return out;
}

std::vector<YearlyCounts> CountPerYear(const MinedDataset& dataset) {
  const int years = dataset.config.year_count();
  std::vector<YearlyCounts> out(years);
  std::vector<std::set<int>> countries(years);
  std::vector<std::set<int32_t>> nameservers(years);
  for (int y = 0; y < years; ++y) {
    out[y].year = dataset.config.first_year + y;
  }
  for (const MinedDomain& domain : dataset.domains) {
    for (int y = 0; y < years; ++y) {
      if (!domain.HasData(y)) continue;
      ++out[y].domains;
      countries[y].insert(domain.country);
      nameservers[y].insert(domain.years[y].ns_ids.begin(),
                            domain.years[y].ns_ids.end());
    }
  }
  for (int y = 0; y < years; ++y) {
    out[y].countries = static_cast<int64_t>(countries[y].size());
    out[y].nameservers = static_cast<int64_t>(nameservers[y].size());
  }
  return out;
}

std::vector<D1nsChurnRow> D1nsChurn(const MinedDataset& dataset) {
  const int years = dataset.config.year_count();
  // Per year: the set of d_1NS (by domain index).
  std::vector<std::set<size_t>> d1ns(years);
  std::vector<std::set<size_t>> has_data(years);
  for (size_t i = 0; i < dataset.domains.size(); ++i) {
    const MinedDomain& domain = dataset.domains[i];
    for (int y = 0; y < years; ++y) {
      if (!domain.HasData(y)) continue;
      has_data[y].insert(i);
      if (domain.years[y].mode_ns_count == 1) d1ns[y].insert(i);
    }
  }
  std::vector<D1nsChurnRow> out;
  for (int y = 0; y < years; ++y) {
    D1nsChurnRow row;
    row.year = dataset.config.first_year + y;
    row.d1ns_total = static_cast<int64_t>(d1ns[y].size());
    if (y > 0 && !d1ns[y].empty()) {
      int64_t overlap_2011 = 0, fresh = 0;
      for (size_t i : d1ns[y]) {
        if (d1ns[0].contains(i)) ++overlap_2011;
        if (!d1ns[y - 1].contains(i)) ++fresh;
      }
      row.pct_overlap_2011 = double(overlap_2011) / double(d1ns[y].size());
      row.pct_new_vs_prev = double(fresh) / double(d1ns[y].size());
    }
    if (y > 0 && !d1ns[0].empty()) {
      int64_t gone = 0;
      for (size_t i : d1ns[0]) {
        if (!has_data[y].contains(i)) ++gone;
      }
      row.pct_2011_cohort_gone = double(gone) / double(d1ns[0].size());
    }
    out.push_back(row);
  }
  return out;
}

std::vector<PrivateShareRow> PrivateShare(
    const MinedDataset& dataset, const std::vector<SeedDomain>& seeds) {
  const int years = dataset.config.year_count();
  std::vector<int64_t> d1ns_total(years, 0), d1ns_private(years, 0);
  std::vector<int64_t> all_total(years, 0), all_private(years, 0);

  // Parse each interned hostname once; every (domain, year) referencing the
  // id then reuses the parsed Name for its subdomain check. nullopt marks a
  // hostname that failed to parse (never inside any d_gov).
  std::vector<std::optional<dns::Name>> parsed(dataset.ns_names.size());
  std::vector<bool> parse_tried(dataset.ns_names.size(), false);
  auto parsed_ns = [&](int32_t id) -> const std::optional<dns::Name>& {
    auto& slot = parsed[static_cast<size_t>(id)];
    if (!parse_tried[static_cast<size_t>(id)]) {
      parse_tried[static_cast<size_t>(id)] = true;
      auto ns = dns::Name::Parse(dataset.NsName(id));
      if (ns.ok()) slot = *std::move(ns);
    }
    return slot;
  };
  for (const MinedDomain& domain : dataset.domains) {
    const dns::Name& d_gov = seeds[domain.seed_index].d_gov;
    for (int y = 0; y < years; ++y) {
      if (!domain.HasData(y)) continue;
      bool all_inside = true;
      for (int32_t id : domain.years[y].ns_ids) {
        const std::optional<dns::Name>& ns = parsed_ns(id);
        if (!ns.has_value() || !ns->IsSubdomainOf(d_gov)) {
          all_inside = false;
          break;
        }
      }
      ++all_total[y];
      if (all_inside) ++all_private[y];
      if (domain.years[y].mode_ns_count == 1) {
        ++d1ns_total[y];
        if (all_inside) ++d1ns_private[y];
      }
    }
  }
  std::vector<PrivateShareRow> out;
  for (int y = 0; y < years; ++y) {
    PrivateShareRow row;
    row.year = dataset.config.first_year + y;
    if (d1ns_total[y] > 0) {
      row.pct_d1ns_private = double(d1ns_private[y]) / double(d1ns_total[y]);
    }
    if (all_total[y] > 0) {
      row.pct_all_private = double(all_private[y]) / double(all_total[y]);
    }
    out.push_back(row);
  }
  return out;
}

}  // namespace govdns::core
