#include "core/mining.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <optional>
#include <set>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>

#include "pdns/snapshot_io.h"
#include "util/rng.h"
#include "util/stats.h"

namespace govdns::core {

uint64_t MiningConfigFingerprint(const MiningConfig& config) {
  uint64_t state = 0x676f76646e73636bull;  // arbitrary non-zero start
  auto mix = [&state](uint64_t v) {
    state ^= v + 0x9E3779B97F4A7C15ull + (state << 6) + (state >> 2);
    uint64_t s = state;
    state = util::SplitMix64(s);
  };
  mix(static_cast<uint64_t>(config.first_year));
  mix(static_cast<uint64_t>(config.last_year));
  mix(static_cast<uint64_t>(config.stability_days));
  mix(static_cast<uint64_t>(config.statistic));
  mix(static_cast<uint64_t>(config.active_window.first));
  mix(static_cast<uint64_t>(config.active_window.last));
  mix(config.filter_disposable ? 1 : 2);
  mix(config.require_stable_for_active ? 1 : 2);
  return state;
}

PdnsMiner::PdnsMiner(const pdns::PdnsDatabase* db, MiningConfig config,
                     MinerOptions options)
    : db_(db), config_(config), options_(options) {
  GOVDNS_CHECK(db != nullptr);
  GOVDNS_CHECK(config.first_year <= config.last_year);
}

PdnsMiner::PdnsMiner(MiningConfig config, MinerOptions options)
    : db_(nullptr), config_(config), options_(options) {
  GOVDNS_CHECK(config.first_year <= config.last_year);
}

bool PdnsMiner::LooksDisposable(const dns::Name& name) {
  if (name.IsRoot()) return false;
  const std::string& label = name.Label(0);
  // Machine-generated pattern: "...-xxxxxx" with a hex tail.
  if (label.size() < 8) return false;
  if (label[label.size() - 7] != '-') return false;
  for (size_t i = label.size() - 6; i < label.size(); ++i) {
    char c = label[i];
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

namespace {

// Per-worker reusable scratch for the Fig. 5 mode sweep: the +1/-1 deltas of
// each stable entry's in-year interval and the aggregated (count -> days)
// histogram. Sorted flat vectors stand in for the two std::maps an earlier
// revision allocated per domain-year; cleared (capacity kept) between uses,
// so a worker's whole sweep load runs allocation-free after warm-up. The
// shard-local intern map lives here too: clear() keeps its bucket array, so
// a worker re-interns each new seed without rebuilding the hash table from
// scratch (the per-seed allocation the 10x scale sweep surfaced).
struct SweepScratch {
  std::vector<std::pair<util::CivilDay, int>> delta;
  std::vector<std::pair<int, int64_t>> days_at_count;
  std::unordered_map<std::string, int32_t> intern;
};

// Output of mining one seed. ns ids are local to this shard's intern table;
// the fold remaps them onto the canonical global table.
struct SeedShard {
  std::vector<MinedDomain> domains;
  std::vector<std::string> ns_names;  // local table, first-appearance order
  MiningStats stats;                  // partial sums (seeds field unused)
};

// The yearly statistic over the aggregated, count-ascending histogram.
// Identical outcomes to the old std::map walk: ties pick the smaller count.
int YearlyValue(YearlyStatistic statistic,
                const std::vector<std::pair<int, int64_t>>& days_at_count) {
  int value = 0;
  switch (statistic) {
    case YearlyStatistic::kMode: {
      int64_t best_days = 0;
      for (const auto& [count, day_total] : days_at_count) {
        if (day_total > best_days) {  // ties -> smaller (ascending order)
          best_days = day_total;
          value = count;
        }
      }
      break;
    }
    case YearlyStatistic::kMin:
      if (!days_at_count.empty()) value = days_at_count.front().first;
      break;
    case YearlyStatistic::kMax:
      if (!days_at_count.empty()) value = days_at_count.back().first;
      break;
    case YearlyStatistic::kMean: {
      int64_t days = 0, weighted = 0;
      for (const auto& [count, day_total] : days_at_count) {
        days += day_total;
        weighted += count * day_total;
      }
      if (days > 0) {
        value = static_cast<int>(std::lround(double(weighted) / double(days)));
      }
      break;
    }
  }
  return value;
}

// Mines one seed against a frozen snapshot — owning (PdnsSnapshot) or
// memory-mapped (MappedPdnsSnapshot); both expose the same lookup API and
// entry field names, differing only in whether entries come out as
// PdnsEntry refs or PdnsEntryView values. Reads only shared immutable state
// and writes only `shard`/`scratch`, so any worker may run any seed.
template <typename Snapshot>
void MineSeed(const MiningConfig& config, const Snapshot& snapshot,
              const SeedDomain& seed, int seed_index,
              const std::vector<util::CivilDay>& year_start,
              const std::vector<util::CivilDay>& year_end, SeedShard& shard,
              SweepScratch& scratch) {
  const int years = config.year_count();

  // §III-C stability predicate: the first-to-last-seen *gap* must reach the
  // threshold. Deliberately not LengthDays(), which is one day longer (see
  // mining.h).
  auto stable = [&config](const auto& entry) {
    return entry.seen.last - entry.seen.first >= config.stability_days;
  };
  auto is_ns = [](const auto& entry) {
    return entry.type == dns::RRType::kNS;
  };

  auto& intern = scratch.intern;
  intern.clear();
  auto intern_ns = [&](std::string_view ns) -> int32_t {
    auto [it, inserted] =
        intern.emplace(ns, static_cast<int32_t>(shard.ns_names.size()));
    if (inserted) shard.ns_names.emplace_back(ns);
    return it->second;
  };

  // One zero-copy owner walk over the subtree; entries of an owner are a
  // contiguous span (no per-seed result vector as the map-backed search
  // returned). All NS entries are considered (unfiltered: the active-window
  // check uses raw sightings, as the paper's FQDN extraction did).
  const auto [name_lo, name_hi] = snapshot.WildcardNameRange(seed.d_gov);
  for (size_t n = name_lo; n < name_hi; ++n) {
    const auto entries = snapshot.entries(n);
    if (std::none_of(entries.begin(), entries.end(), is_ns)) continue;

    MinedDomain domain;
    domain.name = snapshot.name(n);
    domain.country = seed.country;
    domain.seed_index = seed_index;
    domain.disposable = PdnsMiner::LooksDisposable(domain.name);
    domain.years.resize(years);

    for (const auto& entry : entries) {
      if (!is_ns(entry)) continue;
      ++shard.stats.entries_scanned;
      const bool is_stable = stable(entry);
      if (!is_stable) ++shard.stats.entries_unstable;
      if (entry.seen.Overlaps(config.active_window) &&
          (is_stable || !config.require_stable_for_active)) {
        domain.in_active_window = true;
      }
      if (!is_stable) continue;
      for (int y = 0; y < years; ++y) {
        if (entry.seen.last < year_start[y] || entry.seen.first > year_end[y])
          continue;
        domain.years[y].ns_ids.push_back(intern_ns(entry.rdata));
      }
    }

    // Mode of daily counts, per year (paper Fig. 5). A sweep over the
    // +1/-1 deltas of each stable entry's in-year interval.
    for (int y = 0; y < years; ++y) {
      if (domain.years[y].ns_ids.empty()) continue;
      scratch.delta.clear();
      for (const auto& entry : entries) {
        if (!is_ns(entry) || !stable(entry)) continue;
        util::CivilDay from = std::max(entry.seen.first, year_start[y]);
        util::CivilDay to = std::min(entry.seen.last, year_end[y]);
        if (from > to) continue;
        scratch.delta.emplace_back(from, 1);
        scratch.delta.emplace_back(to + 1, -1);
      }
      std::sort(scratch.delta.begin(), scratch.delta.end());

      // Walk the sweep, collecting (count, days) runs; then aggregate equal
      // counts so the histogram is count-ascending with unique keys.
      scratch.days_at_count.clear();
      int current = 0;
      util::CivilDay prev = year_start[y];
      size_t p = 0;
      while (p < scratch.delta.size()) {
        const util::CivilDay day = scratch.delta[p].first;
        int d = 0;
        while (p < scratch.delta.size() && scratch.delta[p].first == day) {
          d += scratch.delta[p].second;
          ++p;
        }
        if (current > 0) scratch.days_at_count.emplace_back(current, day - prev);
        current += d;
        prev = day;
      }
      std::sort(scratch.days_at_count.begin(), scratch.days_at_count.end());
      size_t w = 0;
      for (size_t r = 0; r < scratch.days_at_count.size(); ++r) {
        if (w > 0 &&
            scratch.days_at_count[w - 1].first == scratch.days_at_count[r].first) {
          scratch.days_at_count[w - 1].second += scratch.days_at_count[r].second;
        } else {
          scratch.days_at_count[w++] = scratch.days_at_count[r];
        }
      }
      scratch.days_at_count.resize(w);

      domain.years[y].mode_ns_count =
          YearlyValue(config.statistic, scratch.days_at_count);
      // Dedupe by local id; the fold re-sorts after remapping to global ids.
      auto& ids = domain.years[y].ns_ids;
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    }

    ++shard.stats.domains;
    if (domain.disposable) ++shard.stats.domains_disposable;
    if (domain.in_active_window) ++shard.stats.domains_in_active_window;
    shard.domains.push_back(std::move(domain));
  }
}

// Runs `body` on `workers` threads (inline when workers == 1).
void RunOnPool(int workers, const std::function<void()>& body) {
  if (workers <= 1) {
    body();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(body);
  for (std::thread& t : pool) t.join();
}

}  // namespace

MinedDataset PdnsMiner::Mine(const std::vector<SeedDomain>& seeds) {
  GOVDNS_CHECK(db_ != nullptr);
  // --- Phase 1: freeze. One O(entries) flattening buys every seed a
  // binary-searched zero-copy subtree scan instead of a copied vector.
  pdns::PdnsSnapshot snapshot;
  {
    std::optional<obs::PhaseProfiler::Scope> scope;
    if (options_.profiler != nullptr) {
      scope.emplace(options_.profiler, "mining.freeze");
    }
    snapshot = db_->Freeze();
    if (scope) scope->set_items(static_cast<int64_t>(snapshot.entry_count()));
  }
  return MineImpl(snapshot, seeds);
}

MinedDataset PdnsMiner::MineSnapshot(const pdns::PdnsSnapshot& snapshot,
                                     const std::vector<SeedDomain>& seeds) {
  RecordSnapshotAttach(snapshot.entry_count());
  return MineImpl(snapshot, seeds);
}

MinedDataset PdnsMiner::MineSnapshot(const pdns::MappedPdnsSnapshot& snapshot,
                                     const std::vector<SeedDomain>& seeds) {
  RecordSnapshotAttach(snapshot.entry_count());
  return MineImpl(snapshot, seeds);
}

void PdnsMiner::RecordSnapshotAttach(size_t entries) {
  // A pre-frozen substrate skips the O(entries) flattening, but the profile
  // schema must not depend on the substrate: emit the same "mining.freeze"
  // row the database path does (the attach is the freeze, at O(1) cost) so
  // reports stay byte-identical across substrates.
  if (options_.profiler == nullptr) return;
  obs::PhaseProfiler::Scope scope(options_.profiler, "mining.freeze");
  scope.set_items(static_cast<int64_t>(entries));
}

template <typename Snapshot>
MinedDataset PdnsMiner::MineImpl(const Snapshot& snapshot,
                                 const std::vector<SeedDomain>& seeds) {
  MinedDataset out;
  out.config = config_;
  out.stats.seeds = static_cast<int64_t>(seeds.size());
  const int years = config_.year_count();

  // Precomputed year boundaries (shared, immutable).
  std::vector<util::CivilDay> year_start(years), year_end(years);
  for (int y = 0; y < years; ++y) {
    year_start[y] = util::YearStart(config_.first_year + y);
    year_end[y] = util::YearEnd(config_.first_year + y);
  }

  int workers = options_.workers > 0
                    ? options_.workers
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  if (static_cast<size_t>(workers) > seeds.size() && !seeds.empty()) {
    workers = static_cast<int>(seeds.size());
  }

  // --- Phase 2: shard. An atomic dispenser hands whole seeds to workers;
  // each seed's output lands in its own slot with shard-local ns ids, so
  // which worker mined it cannot leave a trace in the data.
  std::vector<SeedShard> shards(seeds.size());
  {
    std::optional<obs::PhaseProfiler::Scope> scope;
    if (options_.profiler != nullptr) {
      scope.emplace(options_.profiler, "mining.shard");
      scope->set_items(static_cast<int64_t>(seeds.size()));
    }
    std::atomic<size_t> next{0};
    RunOnPool(workers, [&]() {
      SweepScratch scratch;
      for (;;) {
        const size_t s = next.fetch_add(1, std::memory_order_relaxed);
        if (s >= seeds.size()) break;
        MineSeed(config_, snapshot, seeds[s], static_cast<int>(s), year_start,
                 year_end, shards[s], scratch);
      }
    });
  }

  // --- Phase 3: fold, in seed order. Replaying each shard's local intern
  // table builds the canonical global table in exactly the order a serial
  // entry-major traversal would have produced — first appearance wins — so
  // ns_names is byte-identical for any worker count (and to the pre-pool
  // serial miner).
  {
    std::optional<obs::PhaseProfiler::Scope> scope;
    if (options_.profiler != nullptr) {
      scope.emplace(options_.profiler, "mining.fold");
    }
    std::unordered_map<std::string, int32_t> intern;
    intern.reserve(snapshot.name_count());
    out.ns_names.reserve(snapshot.name_count());
    std::vector<std::vector<int32_t>> remap(shards.size());
    for (size_t s = 0; s < shards.size(); ++s) {
      remap[s].reserve(shards[s].ns_names.size());
      for (std::string& ns : shards[s].ns_names) {
        auto [it, inserted] =
            intern.emplace(ns, static_cast<int32_t>(out.ns_names.size()));
        if (inserted) out.ns_names.push_back(std::move(ns));
        remap[s].push_back(it->second);
      }
    }

    // Rewrite shard-local ids to global ids and restore per-year sorted
    // order. Independent per seed, so the pool is reused; the result is
    // canonical regardless of scheduling.
    std::atomic<size_t> next{0};
    RunOnPool(workers, [&]() {
      for (;;) {
        const size_t s = next.fetch_add(1, std::memory_order_relaxed);
        if (s >= shards.size()) break;
        for (MinedDomain& domain : shards[s].domains) {
          for (YearState& year : domain.years) {
            for (int32_t& id : year.ns_ids) id = remap[s][id];
            // Monotonic remaps (common: a shard whose names all appeared in
            // intern order) leave the list sorted; skip the sort then.
            if (!std::is_sorted(year.ns_ids.begin(), year.ns_ids.end())) {
              std::sort(year.ns_ids.begin(), year.ns_ids.end());
            }
          }
        }
      }
    });

    out.domains.reserve(snapshot.name_count());
    for (SeedShard& shard : shards) {
      out.stats.entries_scanned += shard.stats.entries_scanned;
      out.stats.entries_unstable += shard.stats.entries_unstable;
      out.stats.domains += shard.stats.domains;
      out.stats.domains_disposable += shard.stats.domains_disposable;
      out.stats.domains_in_active_window +=
          shard.stats.domains_in_active_window;
      for (MinedDomain& domain : shard.domains) {
        out.domains.push_back(std::move(domain));
      }
    }
    if (scope) scope->set_items(static_cast<int64_t>(out.ns_names.size()));
  }
  return out;
}

std::vector<dns::Name> PdnsMiner::ActiveQueryList(const MinedDataset& dataset) {
  std::vector<dns::Name> out;
  for (const MinedDomain& domain : dataset.domains) {
    if (!domain.in_active_window) continue;
    if (dataset.config.filter_disposable && domain.disposable) continue;
    out.push_back(domain.name);
  }
  return out;
}

std::vector<int> PdnsMiner::ActiveQueryCountries(const MinedDataset& dataset) {
  std::vector<int> out;
  for (const MinedDomain& domain : dataset.domains) {
    if (!domain.in_active_window) continue;
    if (dataset.config.filter_disposable && domain.disposable) continue;
    out.push_back(domain.country);
  }
  return out;
}

std::vector<YearlyCounts> CountPerYear(const MinedDataset& dataset) {
  const int years = dataset.config.year_count();
  std::vector<YearlyCounts> out(years);
  std::vector<std::set<int>> countries(years);
  std::vector<std::set<int32_t>> nameservers(years);
  for (int y = 0; y < years; ++y) {
    out[y].year = dataset.config.first_year + y;
  }
  for (const MinedDomain& domain : dataset.domains) {
    for (int y = 0; y < years; ++y) {
      if (!domain.HasData(y)) continue;
      ++out[y].domains;
      countries[y].insert(domain.country);
      nameservers[y].insert(domain.years[y].ns_ids.begin(),
                            domain.years[y].ns_ids.end());
    }
  }
  for (int y = 0; y < years; ++y) {
    out[y].countries = static_cast<int64_t>(countries[y].size());
    out[y].nameservers = static_cast<int64_t>(nameservers[y].size());
  }
  return out;
}

std::vector<D1nsChurnRow> D1nsChurn(const MinedDataset& dataset) {
  const int years = dataset.config.year_count();
  // Per year: the set of d_1NS (by domain index).
  std::vector<std::set<size_t>> d1ns(years);
  std::vector<std::set<size_t>> has_data(years);
  for (size_t i = 0; i < dataset.domains.size(); ++i) {
    const MinedDomain& domain = dataset.domains[i];
    for (int y = 0; y < years; ++y) {
      if (!domain.HasData(y)) continue;
      has_data[y].insert(i);
      if (domain.years[y].mode_ns_count == 1) d1ns[y].insert(i);
    }
  }
  std::vector<D1nsChurnRow> out;
  for (int y = 0; y < years; ++y) {
    D1nsChurnRow row;
    row.year = dataset.config.first_year + y;
    row.d1ns_total = static_cast<int64_t>(d1ns[y].size());
    if (y > 0 && !d1ns[y].empty()) {
      int64_t overlap_2011 = 0, fresh = 0;
      for (size_t i : d1ns[y]) {
        if (d1ns[0].contains(i)) ++overlap_2011;
        if (!d1ns[y - 1].contains(i)) ++fresh;
      }
      row.pct_overlap_2011 = double(overlap_2011) / double(d1ns[y].size());
      row.pct_new_vs_prev = double(fresh) / double(d1ns[y].size());
    }
    if (y > 0 && !d1ns[0].empty()) {
      int64_t gone = 0;
      for (size_t i : d1ns[0]) {
        if (!has_data[y].contains(i)) ++gone;
      }
      row.pct_2011_cohort_gone = double(gone) / double(d1ns[0].size());
    }
    out.push_back(row);
  }
  return out;
}

std::vector<PrivateShareRow> PrivateShare(
    const MinedDataset& dataset, const std::vector<SeedDomain>& seeds) {
  const int years = dataset.config.year_count();
  std::vector<int64_t> d1ns_total(years, 0), d1ns_private(years, 0);
  std::vector<int64_t> all_total(years, 0), all_private(years, 0);

  // Cache: interned ns id -> parsed name (for the subdomain check).
  std::vector<std::optional<bool>> scratch;
  for (const MinedDomain& domain : dataset.domains) {
    const dns::Name& d_gov = seeds[domain.seed_index].d_gov;
    for (int y = 0; y < years; ++y) {
      if (!domain.HasData(y)) continue;
      bool all_inside = true;
      for (int32_t id : domain.years[y].ns_ids) {
        auto ns = dns::Name::Parse(dataset.NsName(id));
        if (!ns.ok() || !ns->IsSubdomainOf(d_gov)) {
          all_inside = false;
          break;
        }
      }
      ++all_total[y];
      if (all_inside) ++all_private[y];
      if (domain.years[y].mode_ns_count == 1) {
        ++d1ns_total[y];
        if (all_inside) ++d1ns_private[y];
      }
    }
  }
  std::vector<PrivateShareRow> out;
  for (int y = 0; y < years; ++y) {
    PrivateShareRow row;
    row.year = dataset.config.first_year + y;
    if (d1ns_total[y] > 0) {
      row.pct_d1ns_private = double(d1ns_private[y]) / double(d1ns_total[y]);
    }
    if (all_total[y] > 0) {
      row.pct_all_private = double(all_private[y]) / double(all_total[y]);
    }
    out.push_back(row);
  }
  return out;
}

}  // namespace govdns::core
