#include "core/providers.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/strings.h"

namespace govdns::core {

std::vector<ProviderRule> DefaultProviderRules() {
  std::vector<ProviderRule> rules;
  auto add = [&](std::string group, std::string display,
                 std::vector<std::string> suffixes,
                 std::vector<std::string> substrings, bool major) {
    ProviderRule rule;
    rule.group_key = std::move(group);
    rule.display = std::move(display);
    rule.ns_suffixes = std::move(suffixes);
    rule.ns_substrings = std::move(substrings);
    for (const std::string& s : rule.ns_suffixes) {
      rule.soa_suffixes.push_back(s);
    }
    rule.major = major;
    rules.push_back(std::move(rule));
  };

  // Majors (Table II).
  add("AWS DNS", "Amazon", {}, {".awsdns-"}, true);
  add("Azure DNS", "Azure", {}, {".azure-dns."}, true);
  add("cloudflare.com", "Cloudflare", {".ns.cloudflare.com"}, {}, true);
  add("dnspod.net", "DNSPod", {".dnspod.net"}, {}, true);
  add("dnsmadeeasy.com", "DNSMadeEasy", {".dnsmadeeasy.com"}, {}, true);
  add("dynect.net", "Dyn", {".dynect.net"}, {}, true);
  add("domaincontrol.com", "GoDaddy", {".domaincontrol.com"}, {}, true);
  add("ultradns.net", "UltraDNS", {".ultradns.net"}, {}, true);

  // The wider pool (Table III and the long tail).
  add("websitewelcome.com", "websitewelcome.com", {".websitewelcome.com"}, {},
      false);
  add("Hostgator", "Hostgator", {".hostgator.com", ".hostgator.com.br"}, {},
      false);
  add("zoneedit.com", "zoneedit.com", {".zoneedit.com"}, {}, false);
  add("dreamhost.com", "dreamhost.com", {".dreamhost.com"}, {}, false);
  add("bluehost.com", "bluehost.com", {".bluehost.com"}, {}, false);
  add("ixwebhosting.com", "ixwebhosting.com", {".ixwebhosting.com"}, {},
      false);
  add("hostmonster.com", "hostmonster.com", {".hostmonster.com"}, {}, false);
  add("everydns.net", "everydns.net", {".everydns.net"}, {}, false);
  add("pipedns.com", "pipedns.com", {".pipedns.com"}, {}, false);
  add("stabletransit.com", "stabletransit.com", {".stabletransit.com"}, {},
      false);
  add("digitalocean.com", "digitalocean.com", {".digitalocean.com"}, {},
      false);
  add("microsoftonline.com", "microsoftonline.com", {".microsoftonline.com"},
      {}, false);
  add("wixdns.net", "wixdns.net", {".wixdns.net"}, {}, false);
  add("cloudns.net", "cloudns.net", {".cloudns.net"}, {}, false);
  add("hichina.com", "HiChina", {".hichina.com"}, {}, false);
  add("xincache.com", "XinNet", {".xincache.com"}, {}, false);
  add("dns-diy.com", "DNS-DIY", {".dns-diy.com"}, {}, false);
  return rules;
}

ProviderMatcher::ProviderMatcher(std::vector<ProviderRule> rules)
    : rules_(std::move(rules)) {}

int ProviderMatcher::MatchNs(const std::string& hostname) const {
  for (size_t i = 0; i < rules_.size(); ++i) {
    const ProviderRule& rule = rules_[i];
    for (const std::string& suffix : rule.ns_suffixes) {
      if (util::EndsWithIgnoreCase(hostname, suffix)) {
        return static_cast<int>(i);
      }
    }
    for (const std::string& sub : rule.ns_substrings) {
      if (util::ContainsIgnoreCase(hostname, sub)) return static_cast<int>(i);
    }
  }
  return -1;
}

int ProviderMatcher::MatchSoa(const dns::SoaRdata& soa) const {
  int m = MatchNs(soa.mname.ToString());
  if (m >= 0) return m;
  for (size_t i = 0; i < rules_.size(); ++i) {
    for (const std::string& suffix : rules_[i].soa_suffixes) {
      if (util::EndsWithIgnoreCase(soa.rname.ToString(), suffix)) {
        return static_cast<int>(i);
      }
    }
  }
  return -1;
}

ProviderAnalyzer::ProviderAnalyzer(const ProviderMatcher* matcher,
                                   std::vector<CountryMeta> countries)
    : matcher_(matcher), countries_(std::move(countries)) {
  GOVDNS_CHECK(matcher != nullptr);
}

ProviderYearTable ProviderAnalyzer::Analyze(const MinedDataset& dataset,
                                            int year) const {
  const int y = year - dataset.config.first_year;
  GOVDNS_CHECK(y >= 0 && y < dataset.config.year_count());

  const auto& rules = matcher_->rules();
  ProviderYearTable table;
  table.year = year;

  // Grouping units that exist at all: distinct sub-regions + top-10.
  std::set<std::string> all_groups;
  for (const CountryMeta& meta : countries_) {
    all_groups.insert(ProviderGroupKey(meta));
  }
  table.total_groups = static_cast<int64_t>(all_groups.size());

  // Interned NS id -> rule match, computed lazily once.
  std::vector<int> ns_match(dataset.ns_names.size(), -2);
  auto match_of = [&](int32_t id) {
    if (ns_match[id] == -2) ns_match[id] = matcher_->MatchNs(dataset.NsName(id));
    return ns_match[id];
  };

  struct Acc {
    int64_t domains = 0;
    int64_t d1p = 0;
    std::set<std::string> groups;
    std::set<int> countries;
  };
  std::vector<Acc> acc(rules.size());

  for (const MinedDomain& domain : dataset.domains) {
    if (!domain.HasData(y)) continue;
    ++table.total_domains;
    const auto& ids = domain.years[y].ns_ids;
    std::set<int> matched;
    bool any_unmatched = false;
    for (int32_t id : ids) {
      int m = match_of(id);
      if (m >= 0) {
        matched.insert(m);
      } else {
        any_unmatched = true;
      }
    }
    if (matched.empty()) continue;
    const CountryMeta& meta = countries_[domain.country];
    for (int m : matched) {
      ++acc[m].domains;
      acc[m].groups.insert(ProviderGroupKey(meta));
      acc[m].countries.insert(domain.country);
      // d_1P: the whole NS set belongs to this single provider.
      if (matched.size() == 1 && !any_unmatched) ++acc[m].d1p;
    }
  }

  for (size_t i = 0; i < rules.size(); ++i) {
    ProviderYearRow row;
    row.group_key = rules[i].group_key;
    row.display = rules[i].display;
    row.year = year;
    row.domains = acc[i].domains;
    row.d1p = acc[i].d1p;
    row.groups = static_cast<int64_t>(acc[i].groups.size());
    row.countries = static_cast<int64_t>(acc[i].countries.size());
    row.major = rules[i].major;
    table.rows.push_back(std::move(row));
  }
  return table;
}

std::vector<ProviderYearRow> ProviderAnalyzer::TopByCountries(
    const ProviderYearTable& table, size_t n) {
  std::vector<ProviderYearRow> rows = table.rows;
  std::stable_sort(rows.begin(), rows.end(),
                   [](const ProviderYearRow& a, const ProviderYearRow& b) {
                     if (a.countries != b.countries) {
                       return a.countries > b.countries;
                     }
                     return a.domains > b.domains;
                   });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

int64_t ProviderAnalyzer::MaxCountriesAnyProvider(
    const ProviderYearTable& table) {
  int64_t best = 0;
  for (const ProviderYearRow& row : table.rows) {
    best = std::max(best, row.countries);
  }
  return best;
}

}  // namespace govdns::core
