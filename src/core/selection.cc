#include "core/selection.h"

namespace govdns::core {

SeedSelector::SeedSelector(IterativeResolver* resolver,
                           const registrar::PublicSuffixList* psl,
                           const RegistryPolicyLookup* policy,
                           SelectorOptions options)
    : resolver_(resolver),
      psl_(psl),
      policy_(policy),
      options_(std::move(options)) {
  GOVDNS_CHECK(resolver != nullptr && psl != nullptr && policy != nullptr);
}

bool SeedSelector::Resolves(const dns::Name& fqdn) {
  auto addrs = resolver_->ResolveAddresses(fqdn);
  return addrs.ok() && !addrs->empty();
}

bool SeedSelector::LooksSquatted(const dns::Name& fqdn) {
  auto reg = psl_->RegisteredDomain(fqdn);
  if (!reg) return false;
  auto ns_records = resolver_->Resolve(*reg, dns::RRType::kNS);
  if (!ns_records.ok()) return false;
  for (const dns::ResourceRecord& rr : *ns_records) {
    if (rr.type() != dns::RRType::kNS) continue;
    const dns::Name& ns = std::get<dns::NsRdata>(rr.rdata).nameserver;
    for (const dns::Name& park : options_.parking_ns_domains) {
      if (ns.IsSubdomainOf(park)) return true;
    }
  }
  return false;
}

std::optional<SeedDomain> SeedSelector::ExtractSeed(int country,
                                                    const dns::Name& fqdn) {
  // Deepest suffix with documented government restriction.
  for (size_t count = fqdn.LabelCount() - 1; count >= 1; --count) {
    dns::Name suffix = fqdn.Suffix(count);
    auto restricted = policy_->IsRestricted(suffix);
    if (restricted.has_value() && *restricted) {
      SeedDomain seed;
      seed.country = country;
      seed.d_gov = suffix;
      seed.verification = SeedVerification::kRegistryPolicy;
      return seed;
    }
  }
  // No documented restriction anywhere: the registered domain, verified
  // out-of-band (MSQ / Whois), is the best anchor available.
  auto reg = psl_->RegisteredDomain(fqdn);
  if (!reg) return std::nullopt;
  SeedDomain seed;
  seed.country = country;
  seed.d_gov = *reg;
  seed.verification = SeedVerification::kRegisteredDomain;
  return seed;
}

std::vector<SeedDomain> SeedSelector::Select(
    const std::vector<KnowledgeBaseRecord>& kb, SelectionStats* stats) {
  SelectionStats local;
  std::vector<SeedDomain> seeds;
  for (const KnowledgeBaseRecord& record : kb) {
    ++local.total;
    dns::Name fqdn = record.portal_fqdn;
    bool fallback = false;

    if (!Resolves(fqdn)) {
      ++local.broken_links;
      if (record.msq_fqdn && !(*record.msq_fqdn == fqdn)) {
        fqdn = *record.msq_fqdn;
        fallback = true;
      }
      // A dead link does not block suffix extraction: the FQDN string is
      // still in the KB page.
    } else if (LooksSquatted(fqdn)) {
      ++local.squatted_links;
      if (record.msq_fqdn) {
        fqdn = *record.msq_fqdn;
        fallback = true;
      }
    }
    if (fallback) ++local.msq_fallbacks;

    auto seed = ExtractSeed(record.country, fqdn);
    if (!seed) continue;
    seed->used_msq_fallback = fallback;
    if (seed->verification == SeedVerification::kRegisteredDomain) {
      ++local.registered_domain_fallbacks;
    }
    seeds.push_back(*std::move(seed));
  }
  if (stats != nullptr) *stats = local;
  return seeds;
}

}  // namespace govdns::core
