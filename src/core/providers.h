// Third-party DNS provider identification and centralization analysis
// (§IV-B, Tables II and III).
//
// Identification mirrors the paper's method: match nameserver hostnames
// against a curated rule list (substring patterns for Amazon's unique
// awsdns naming, suffix matching for everyone else), optionally augmented
// by SOA MNAME/RNAME matching, which catches customers that front a
// provider with vanity NS names in their own zone.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/mining.h"
#include "core/types.h"
#include "dns/rr.h"

namespace govdns::core {

struct ProviderRule {
  std::string group_key;    // display/aggregation key ("cloudflare.com")
  std::string display;
  // Hostname matches when it ends with one of these domain suffixes...
  std::vector<std::string> ns_suffixes;
  // ...or contains one of these substrings (the awsdns / azure-dns style).
  std::vector<std::string> ns_substrings;
  // SOA MNAME/RNAME suffixes that identify the provider.
  std::vector<std::string> soa_suffixes;
  bool major = false;  // a Table II row
};

// The curated rule list for the providers the paper tracks.
std::vector<ProviderRule> DefaultProviderRules();

class ProviderMatcher {
 public:
  explicit ProviderMatcher(std::vector<ProviderRule> rules);

  // Matches one NS hostname (presentation form); -1 if no provider.
  int MatchNs(const std::string& hostname) const;
  // Matches SOA MNAME/RNAME; -1 if no provider.
  int MatchSoa(const dns::SoaRdata& soa) const;

  const std::vector<ProviderRule>& rules() const { return rules_; }

 private:
  std::vector<ProviderRule> rules_;
};

// ---- Yearly provider usage (Tables II/III) --------------------------------

struct ProviderYearRow {
  std::string group_key;
  std::string display;
  int year = 0;
  int64_t domains = 0;    // domains with >=1 NS at this provider
  int64_t d1p = 0;        // domains whose entire NS set is this provider
  int64_t groups = 0;     // sub-region groups (top-10 split out) covered
  int64_t countries = 0;  // countries covered
  bool major = false;
};

struct ProviderYearTable {
  int year = 0;
  int64_t total_domains = 0;  // domains with data that year
  int64_t total_groups = 0;   // number of grouping units that exist
  std::vector<ProviderYearRow> rows;
};

class ProviderAnalyzer {
 public:
  ProviderAnalyzer(const ProviderMatcher* matcher,
                   std::vector<CountryMeta> countries);

  // Usage per provider for one year of the mined dataset.
  ProviderYearTable Analyze(const MinedDataset& dataset, int year) const;

  // Top-N rows of a year, ranked by countries covered (Table III).
  static std::vector<ProviderYearRow> TopByCountries(
      const ProviderYearTable& table, size_t n);

  // The paper's §IV-B headline: the max, over providers, of the number of
  // countries with domains using that provider.
  static int64_t MaxCountriesAnyProvider(const ProviderYearTable& table);

 private:
  const ProviderMatcher* matcher_;
  std::vector<CountryMeta> countries_;
};

}  // namespace govdns::core
