#include "core/vantage.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "ckpt/journal.h"
#include "ckpt/serial.h"
#include "util/json.h"
#include "util/rng.h"

namespace govdns::core {

namespace {

// Namespace tag for VantageBaseFingerprint: keeps a vantage journal's
// identity disjoint from the single-vantage journal of the same world even
// for an empty vantage name.
constexpr uint64_t kVantageFpTag = 0x6776766eULL;  // "gvvn"

// Authoritative-share verdict thresholds (see DisagreementRow).
const char* VerdictFor(int64_t domains, int64_t authoritative) {
  if (domains == 0) return "none";
  const double share = double(authoritative) / double(domains);
  if (share >= 0.9) return "healthy";
  if (share >= 0.5) return "degraded";
  if (share > 0.0) return "lame";
  return "dark";
}

}  // namespace

VantageSummary BuildVantageSummary(const std::string& name,
                                   uint64_t fingerprint,
                                   const ActiveDataset& dataset,
                                   const std::string& report_json) {
  VantageSummary s;
  s.name = name;
  s.fingerprint = fingerprint;
  s.report_crc = ckpt::Crc32(report_json);
  std::vector<VantageCountryHealth> rows(dataset.metas.size());
  for (size_t i = 0; i < dataset.results.size(); ++i) {
    const MeasurementResult& r = dataset.results[i];
    ++s.domains;
    if (r.parent_responded) ++s.responsive;
    if (r.child_any_authoritative) ++s.authoritative;
    if (r.quarantine_reason != QuarantineReason::kNone) ++s.quarantined;
    const int c = i < dataset.country.size() ? dataset.country[i] : -1;
    if (c < 0 || c >= static_cast<int>(rows.size())) continue;
    VantageCountryHealth& row = rows[c];
    ++row.domains;
    if (r.parent_responded) {
      ++row.responsive;
      if (r.child_any_authoritative) {
        ++row.authoritative;
      } else if (r.parent_has_records) {
        ++row.lame;
      }
    } else {
      ++row.unreachable;
    }
    if (r.quarantine_reason != QuarantineReason::kNone) ++row.quarantined;
  }
  for (size_t slot = 0; slot < rows.size(); ++slot) {
    if (rows[slot].domains == 0) continue;
    rows[slot].code = dataset.metas[slot].code;
    s.countries.push_back(std::move(rows[slot]));
  }
  return s;
}

void EncodeVantageSummary(ckpt::Writer& w, const VantageSummary& summary) {
  w.U8(kVantageFrameKind);
  w.Str(summary.name);
  w.U64(summary.fingerprint);
  w.I64(summary.domains);
  w.I64(summary.responsive);
  w.I64(summary.authoritative);
  w.I64(summary.quarantined);
  w.U32(summary.report_crc);
  w.Size(summary.countries.size());
  for (const VantageCountryHealth& row : summary.countries) {
    w.Str(row.code);
    w.I64(row.domains);
    w.I64(row.responsive);
    w.I64(row.authoritative);
    w.I64(row.lame);
    w.I64(row.unreachable);
    w.I64(row.quarantined);
  }
}

bool DecodeVantageSummary(ckpt::Reader& r, VantageSummary* out) {
  uint8_t kind = 0;
  size_t count = 0;
  if (!r.U8(&kind) || kind != kVantageFrameKind || !r.Str(&out->name) ||
      !r.U64(&out->fingerprint) || !r.I64(&out->domains) ||
      !r.I64(&out->responsive) || !r.I64(&out->authoritative) ||
      !r.I64(&out->quarantined) || !r.U32(&out->report_crc) ||
      !r.Count(&count)) {
    return false;
  }
  out->countries.resize(count);
  for (size_t i = 0; i < count; ++i) {
    VantageCountryHealth& row = out->countries[i];
    if (!r.Str(&row.code) || !r.I64(&row.domains) || !r.I64(&row.responsive) ||
        !r.I64(&row.authoritative) || !r.I64(&row.lame) ||
        !r.I64(&row.unreachable) || !r.I64(&row.quarantined)) {
      return false;
    }
  }
  return r.AtEnd();
}

std::optional<VantageSummary> LoadVantageSummary(const std::string& dir,
                                                 uint64_t fingerprint) {
  ckpt::Journal journal(dir, fingerprint);
  auto frame = journal.Load(kVantageFrameName, /*parent_crc=*/0);
  if (!frame.ok()) return std::nullopt;
  ckpt::Reader r(frame->payload);
  VantageSummary summary;
  if (!DecodeVantageSummary(r, &summary)) return std::nullopt;
  // Frame-level fingerprint validation already ran; the embedded copy must
  // agree, or the payload summarizes some other vantage's run.
  if (summary.fingerprint != fingerprint) return std::nullopt;
  return summary;
}

std::string VantageJournalDir(const std::string& ckpt_root,
                              const std::string& name) {
  return ckpt_root + "/vantage_" + name;
}

uint64_t VantageBaseFingerprint(uint64_t world_fingerprint,
                                const std::string& name) {
  return ckpt::MixFingerprint(world_fingerprint,
                              util::HashString(name, kVantageFpTag));
}

// --- Supervision -----------------------------------------------------------

VantageSupervisor::VantageSupervisor(std::vector<std::string> names,
                                     VantageSupervisorOptions options)
    : names_(std::move(names)), options_(options) {
  if (options_.max_restarts < 0) options_.max_restarts = 0;
  if (options_.poll_ms == 0) options_.poll_ms = 1;
}

std::vector<VantageOutcome> VantageSupervisor::Run(const ChildFn& fn) {
  using Clock = std::chrono::steady_clock;

  struct Child {
    std::string name;
    pid_t pid = -1;
    int attempt = 0;
    Clock::time_point first_start;
    Clock::time_point attempt_start;
    bool running = false;
    bool kill_once_pending = false;
    bool deadline_kill_inflight = false;
    VantageOutcome out;
  };

  auto spawn = [&fn](Child& c) {
    c.attempt_start = Clock::now();
    c.running = true;
    c.deadline_kill_inflight = false;
    pid_t pid = fork();
    GOVDNS_CHECK(pid >= 0);
    if (pid == 0) {
      // Shard process: run the vantage and die without touching the
      // parent's atexit machinery (stdio is shared with the parent).
      _exit(fn(c.name, c.attempt));
    }
    c.pid = pid;
  };

  std::vector<Child> children(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    Child& c = children[i];
    c.name = names_[i];
    c.out.name = names_[i];
    c.first_start = Clock::now();
    c.kill_once_pending = options_.kill_once.has_value() &&
                          options_.kill_once->name == c.name;
    spawn(c);
  }

  auto elapsed_ms = [](Clock::time_point since) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              since)
            .count());
  };

  size_t running = children.size();
  while (running > 0) {
    for (Child& c : children) {
      if (!c.running) continue;
      int status = 0;
      const pid_t r = waitpid(c.pid, &status, WNOHANG);
      if (r == c.pid) {
        c.running = false;
        --running;
        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        c.out.attempts = c.attempt + 1;
        c.out.last_exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 0;
        c.out.last_signal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
        if (c.deadline_kill_inflight) ++c.out.deadline_kills;
        if (clean) continue;
        if (c.attempt >= options_.max_restarts) {
          // Restart budget spent: the vantage is lost. Its partial journal
          // stays on disk (an operator can still resume it by hand); the
          // merge proceeds without it.
          c.out.lost = true;
          continue;
        }
        ++c.attempt;
        spawn(c);
        ++running;
        continue;
      }
      // Still running: fault injection first (a real mid-phase SIGKILL),
      // then the straggler deadline.
      if (c.kill_once_pending &&
          elapsed_ms(c.first_start) >= options_.kill_once->after_ms) {
        c.kill_once_pending = false;
        kill(c.pid, SIGKILL);
        continue;
      }
      if (options_.deadline_ms > 0 && !c.deadline_kill_inflight &&
          elapsed_ms(c.attempt_start) >= options_.deadline_ms) {
        c.deadline_kill_inflight = true;
        kill(c.pid, SIGKILL);
      }
    }
    if (running > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.poll_ms));
    }
  }

  std::vector<VantageOutcome> out;
  out.reserve(children.size());
  for (Child& c : children) out.push_back(std::move(c.out));
  return out;
}

// --- Deterministic merge ---------------------------------------------------

MultiVantageReport MergeVantageSummaries(std::vector<VantageSummary> summaries,
                                         std::vector<std::string> lost) {
  MultiVantageReport report;
  // Name order, not completion order: the single sort that makes the whole
  // merged document independent of scheduling and restart history.
  std::sort(summaries.begin(), summaries.end(),
            [](const VantageSummary& a, const VantageSummary& b) {
              return a.name < b.name;
            });
  std::sort(lost.begin(), lost.end());
  report.lost = std::move(lost);
  for (const VantageSummary& s : summaries) report.order.push_back(s.name);

  const size_t n = summaries.size();
  std::map<std::string, std::vector<const VantageCountryHealth*>> by_code;
  for (size_t v = 0; v < n; ++v) {
    for (const VantageCountryHealth& row : summaries[v].countries) {
      auto& slots = by_code[row.code];
      slots.resize(n, nullptr);
      slots[v] = &row;
    }
  }
  for (const auto& [code, slots] : by_code) {
    int present = 0;
    for (const VantageCountryHealth* row : slots) {
      if (row != nullptr && row->domains > 0) ++present;
    }
    if (present < 2) continue;  // nothing to disagree about
    DisagreementRow out;
    out.code = code;
    double min_share = 1.0, max_share = 0.0;
    std::string first_verdict;
    for (size_t v = 0; v < n; ++v) {
      const VantageCountryHealth* row = slots.size() > v ? slots[v] : nullptr;
      const int64_t domains = row != nullptr ? row->domains : 0;
      const int64_t authoritative = row != nullptr ? row->authoritative : 0;
      out.domains.push_back(domains);
      out.authoritative.push_back(authoritative);
      out.verdicts.push_back(VerdictFor(domains, authoritative));
      if (domains == 0) continue;
      const double share = double(authoritative) / double(domains);
      min_share = std::min(min_share, share);
      max_share = std::max(max_share, share);
      if (first_verdict.empty()) {
        first_verdict = out.verdicts.back();
      } else if (out.verdicts.back() != first_verdict) {
        out.disagrees = true;
      }
    }
    out.spread = max_share - min_share;
    ++report.countries_compared;
    if (out.disagrees) ++report.countries_disagreeing;
    report.rows.push_back(std::move(out));
  }
  report.vantages = std::move(summaries);
  return report;
}

std::string ExportMultiVantageJson(const MultiVantageReport& report) {
  util::JsonWriter w;
  w.BeginObject();
  w.Key("vantages").BeginArray();
  for (const VantageSummary& s : report.vantages) {
    w.BeginObject();
    w.Kv("name", s.name);
    w.Key("fingerprint").Uint(s.fingerprint);
    w.Kv("domains", s.domains);
    w.Kv("responsive", s.responsive);
    w.Kv("authoritative", s.authoritative);
    w.Kv("quarantined", s.quarantined);
    w.Key("report_crc").Uint(s.report_crc);
    w.Key("countries").BeginArray();
    for (const VantageCountryHealth& row : s.countries) {
      w.BeginObject();
      w.Kv("code", row.code);
      w.Kv("domains", row.domains);
      w.Kv("responsive", row.responsive);
      w.Kv("authoritative", row.authoritative);
      w.Kv("lame", row.lame);
      w.Kv("unreachable", row.unreachable);
      w.Kv("quarantined", row.quarantined);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("lost").BeginArray();
  for (const std::string& name : report.lost) w.String(name);
  w.EndArray();
  // Lost vantages are quarantine, not silence: name the taxonomy entry so
  // downstream coverage tooling treats them like any other degraded scope.
  w.Kv("lost_reason", QuarantineReasonName(QuarantineReason::kVantageLost));
  w.Key("disagreement").BeginObject();
  w.Kv("countries_compared", report.countries_compared);
  w.Kv("countries_disagreeing", report.countries_disagreeing);
  w.Key("rows").BeginArray();
  for (const DisagreementRow& row : report.rows) {
    w.BeginObject();
    w.Kv("code", row.code);
    w.Kv("spread", row.spread);
    w.Kv("disagrees", row.disagrees);
    w.Key("domains").BeginArray();
    for (int64_t v : row.domains) w.Int(v);
    w.EndArray();
    w.Key("authoritative").BeginArray();
    for (int64_t v : row.authoritative) w.Int(v);
    w.EndArray();
    w.Key("verdicts").BeginArray();
    for (const std::string& v : row.verdicts) w.String(v);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

void PrintMultiVantageReport(const MultiVantageReport& report,
                             std::ostream& os) {
  os << "\n-- cross-vantage disagreement --\n";
  os << "vantages:";
  for (const std::string& name : report.order) os << " " << name;
  if (!report.lost.empty()) {
    os << "  (lost:";
    for (const std::string& name : report.lost) os << " " << name;
    os << ")";
  }
  os << "\n";
  for (const VantageSummary& s : report.vantages) {
    os << "  " << s.name << ": " << s.domains << " domains, " << s.responsive
       << " responsive, " << s.authoritative << " authoritative, "
       << s.quarantined << " quarantined\n";
  }
  os << "countries compared: " << report.countries_compared << ", disagreeing: "
     << report.countries_disagreeing << "\n";
  for (const DisagreementRow& row : report.rows) {
    if (!row.disagrees) continue;
    os << "  " << row.code << ":";
    for (size_t v = 0; v < row.verdicts.size(); ++v) {
      os << " " << report.order[v] << "=" << row.verdicts[v] << "("
         << row.authoritative[v] << "/" << row.domains[v] << ")";
    }
    os << "\n";
  }
}

}  // namespace govdns::core
