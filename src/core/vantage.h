// Multi-vantage measurement: supervised vantage shards, journal-coordinated
// crash recovery, and a deterministic cross-vantage disagreement merge
// (DESIGN.md §6k).
//
// Ownership split: each vantage shard is a forked child process running the
// full study pipeline against its own network view, journaling into its own
// per-vantage ckpt::Journal subdirectory and finishing with a self-contained
// `vantage` frame (kind 7) that summarizes what that vantage saw. The parent
// VantageSupervisor — the PhaseWatchdog idea promoted from threads to
// processes — waitpid-monitors the shards on the wall clock, restarts a
// crashed shard from its own journal (resume machinery: a kill at any write
// point loses at most one batch), SIGKILLs a straggler that outlives its
// per-attempt deadline, and declares a shard lost once its restart budget is
// spent. Surviving summaries then fold through MergeVantageSummaries: a pure
// function of the set of summaries (sorted by vantage name), so the merged
// report is byte-identical whatever order shards finished in, how often they
// crashed, or which attempt finally completed.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/analysis.h"

namespace govdns::ckpt {
class Reader;
class Writer;
}  // namespace govdns::ckpt

namespace govdns::core {

// The `vantage` frame's payload kind tag and on-disk frame name. Kept here
// (not in study_ckpt.cc) because the parent-side loader decodes the frame
// without a StudyCheckpoint.
inline constexpr uint8_t kVantageFrameKind = 7;
inline constexpr char kVantageFrameName[] = "vantage";

// Per-country ADNS health as seen from one vantage.
struct VantageCountryHealth {
  std::string code;
  int64_t domains = 0;        // measured domains attributed to the country
  int64_t responsive = 0;     // parent zone responded
  int64_t authoritative = 0;  // >=1 child NS answered authoritatively
  int64_t lame = 0;           // parent has records but no child authority
  int64_t unreachable = 0;    // no parent response at all
  int64_t quarantined = 0;

  friend bool operator==(const VantageCountryHealth&,
                         const VantageCountryHealth&) = default;
};

// What one vantage shard journals about itself: identity plus the funnel
// and per-country health rows the merge needs. `report_crc` pins the full
// single-vantage report JSON without carrying its bytes.
struct VantageSummary {
  std::string name;
  uint64_t fingerprint = 0;  // the shard journal's full fingerprint
  int64_t domains = 0;
  int64_t responsive = 0;
  int64_t authoritative = 0;
  int64_t quarantined = 0;
  uint32_t report_crc = 0;
  std::vector<VantageCountryHealth> countries;  // metas order, rows with data

  friend bool operator==(const VantageSummary&,
                         const VantageSummary&) = default;
};

// Condenses a finished shard's dataset into its summary. Pure function of
// the dataset (itself deterministic), so an interrupted-and-resumed shard
// reproduces the identical summary.
VantageSummary BuildVantageSummary(const std::string& name,
                                   uint64_t fingerprint,
                                   const ActiveDataset& dataset,
                                   const std::string& report_json);

// Frame codec, shared by StudyCheckpoint::SaveVantage (child side) and
// LoadVantageSummary (parent side).
void EncodeVantageSummary(ckpt::Writer& w, const VantageSummary& summary);
bool DecodeVantageSummary(ckpt::Reader& r, VantageSummary* out);

// Parent-side load of a finished shard's summary straight from its journal
// directory. `fingerprint` must be the shard journal's full fingerprint
// (world/config identity mixed with the vantage name and study identity —
// see VantageJournalFingerprint). Returns nullopt when the frame is
// missing, invalid, or summarizes a different vantage.
std::optional<VantageSummary> LoadVantageSummary(const std::string& dir,
                                                 uint64_t fingerprint);

// The per-vantage journal directory under the supervisor's checkpoint root,
// and the base fingerprint a shard binds its StudyCheckpoint with. Mixing
// the vantage name into the fingerprint means one shard's journal can never
// satisfy another shard's resume.
std::string VantageJournalDir(const std::string& ckpt_root,
                              const std::string& name);
uint64_t VantageBaseFingerprint(uint64_t world_fingerprint,
                                const std::string& name);

// --- Supervision -----------------------------------------------------------

struct VantageSupervisorOptions {
  // Wall-clock budget per attempt; a child still running after this long is
  // SIGKILLed and the kill is treated as a crash (restart from journal).
  // 0 = no deadline.
  uint64_t deadline_ms = 0;
  // Crash/deadline restarts allowed per vantage before it is declared lost.
  int max_restarts = 2;
  // waitpid poll cadence.
  uint32_t poll_ms = 20;

  // Test hook: SIGKILL the named vantage once, `after_ms` after its first
  // attempt started — a real mid-phase murder, not an injected exception.
  struct KillOnce {
    std::string name;
    uint64_t after_ms = 0;
  };
  std::optional<KillOnce> kill_once;
};

// Terminal state of one vantage after supervision. Everything except
// `name`/`lost` is wall-clock-dependent bookkeeping — diagnostic only, and
// deliberately excluded from merged (deterministic) outputs.
struct VantageOutcome {
  std::string name;
  bool lost = false;       // restart budget exhausted; excluded from merge
  int attempts = 1;        // 1 = finished first try
  int deadline_kills = 0;  // attempts that died to the deadline
  int last_exit_code = 0;  // 0 after a clean finish
  int last_signal = 0;     // terminating signal of the last attempt, if any
};

class VantageSupervisor {
 public:
  // `fn(name, attempt)` runs inside the forked child and returns its exit
  // code; attempt 0 is the first try, >0 are restarts (which should resume
  // from the shard's journal). The child never returns to the caller's
  // code: the supervisor `_exit`s with fn's result.
  using ChildFn = std::function<int(const std::string& name, int attempt)>;

  VantageSupervisor(std::vector<std::string> names,
                    VantageSupervisorOptions options);

  // Forks one child per vantage (all concurrently), supervises them to
  // completion, and returns one outcome per vantage in the input order.
  // Serial with respect to the calling thread; spawns no threads of its
  // own, so it is fork-safe to call from a single-threaded parent.
  std::vector<VantageOutcome> Run(const ChildFn& fn);

 private:
  std::vector<std::string> names_;
  VantageSupervisorOptions options_;
};

// --- Deterministic merge ---------------------------------------------------

// One country's cross-vantage disagreement row. `health` holds the
// authoritative share per vantage, aligned with MultiVantageReport::order;
// `verdicts` classifies each share (healthy >= 0.9 > degraded >= 0.5 >
// lame > 0.0 == dark). A row is emitted only when at least two vantages
// measured the country; it counts as a disagreement when the verdicts are
// not all equal.
struct DisagreementRow {
  std::string code;
  std::vector<int64_t> domains;        // per vantage
  std::vector<int64_t> authoritative;  // per vantage
  std::vector<std::string> verdicts;   // per vantage
  double spread = 0.0;                 // max - min authoritative share
  bool disagrees = false;

  friend bool operator==(const DisagreementRow&,
                         const DisagreementRow&) = default;
};

struct MultiVantageReport {
  std::vector<std::string> order;  // surviving vantage names, sorted
  std::vector<std::string> lost;   // lost vantage names, sorted
  std::vector<VantageSummary> vantages;  // in `order`
  std::vector<DisagreementRow> rows;     // code order, >=2 vantages each
  int64_t countries_compared = 0;
  int64_t countries_disagreeing = 0;

  friend bool operator==(const MultiVantageReport&,
                         const MultiVantageReport&) = default;
};

// Folds surviving summaries into the disagreement analysis. Sorts by
// vantage name first, so the result — and its JSON/text renderings — is
// independent of completion order, restart history, and the order the
// caller collected the summaries in.
MultiVantageReport MergeVantageSummaries(std::vector<VantageSummary> summaries,
                                         std::vector<std::string> lost);

// Byte-stable JSON document for the merged report (diagnostic outcome
// fields excluded by construction — they never enter the merge).
std::string ExportMultiVantageJson(const MultiVantageReport& report);

// Renders the "-- cross-vantage disagreement --" section.
void PrintMultiVantageReport(const MultiVantageReport& report,
                             std::ostream& os);

}  // namespace govdns::core
