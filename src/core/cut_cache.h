// A zone-cut + negative cache shared by a fleet of resolvers.
//
// The serial measurement path kept one private cut cache per
// IterativeResolver; the sharded engine gives every worker its own resolver
// but one shared cache, so gov.cn's servers are resolved once per run, not
// once per shard. Entries are striped across independently-locked maps by
// name hash — lookups for unrelated zones never contend.
//
// Concurrency model: optimistic compute, last-publish-wins. There is no
// claim/wait protocol: two workers that race on a cold cut both compute it
// and both publish. Because every cut computation runs in a hermetic chaos
// context keyed by the cut's parent zone (see IterativeResolver), the racers
// draw identical network weather and publish identical entries, so the race
// costs duplicate *infrastructure* queries but can never change the cache's
// contents or any per-domain measurement outcome. Blocking single-flight was
// rejected deliberately: circular glueless NS dependencies (zone A's servers
// named under zone B and vice versa) would deadlock a claim-and-wait design.
//
// Accounting: queries spent computing shared entries ("infrastructure"
// effort) are charged here via ChargeInfra, not to the triggering domain.
// That keeps per-domain query_stats — and therefore the study's resilience
// report — a pure function of (world seed, domain), byte-identical no matter
// how many workers share the cache or which of them warmed it.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/resolver.h"
#include "dns/name.h"
#include "geo/ipv4.h"
#include "obs/trace.h"

namespace govdns::core {

struct CutCacheStats {
  uint64_t hits = 0;             // positive entries served
  uint64_t misses = 0;
  uint64_t negative_hits = 0;    // unexpired dead-subtree entries served
  uint64_t publishes = 0;
  uint64_t negative_publishes = 0;
  uint64_t negative_evictions = 0;  // negatives dropped by the per-stripe bound
  // Query effort spent computing shared entries (cold walks, glueless NS
  // resolution, dead-subtree probing). Reported as a diagnostic alongside —
  // never inside — the per-domain resilience totals: cold-start races make
  // it scheduling-dependent by a few duplicate walks.
  ResolverCounters infra;
};

class SharedCutCache {
 public:
  struct Entry {
    std::vector<dns::Name> ns_names;
    std::vector<geo::IPv4> addresses;
    bool reachable = true;    // false: remembering a dead subtree
    uint64_t expires_ms = 0;  // unreachable entries only: retry-after time
  };

  // `max_negatives_per_stripe` bounds how many dead-subtree entries a stripe
  // retains; publishing past the bound evicts expired negatives first, then
  // the earliest-expiring one. The bound keeps a resumed run (or a very long
  // one) from accumulating stale negatives without limit. Eviction is
  // outcome-neutral for per-domain results: re-probing an evicted dead
  // subtree costs infra-charged queries and one negative_cache_hit per
  // domain, exactly like a warm negative (uniform accounting, DESIGN.md §6e).
  explicit SharedCutCache(size_t stripes = 16,
                          size_t max_negatives_per_stripe = 256);

  // Copies the entry out under the stripe lock; counts a hit/miss.
  std::optional<Entry> Lookup(const dns::Name& cut) const;

  // Publishes (or overwrites) an entry. Racing publishers of the same cut
  // carry identical content by construction, so ordering is immaterial.
  void Publish(const dns::Name& cut, Entry entry);
  // `now_ms` drives expired-first eviction under the negative bound; expiry
  // itself is judged against the logical clock by the resolver on lookup.
  void PublishUnreachable(const dns::Name& cut, std::vector<dns::Name> ns_names,
                          uint64_t expires_ms, uint64_t now_ms);

  void ChargeInfra(const ResolverCounters& effort);

  // Checkpoint support: a deterministic (name-sorted) snapshot of all
  // entries, and bulk restore into an empty-or-warm cache. Restore skips
  // unreachable entries — negatives must never outlive the run that observed
  // them — and returns the number of entries actually inserted.
  std::vector<std::pair<dns::Name, Entry>> Export() const;
  size_t Restore(const std::vector<std::pair<dns::Name, Entry>>& entries);

  // Wires a publish log (not owned; may be null). Raw publish order and
  // multiplicity are scheduling-dependent, but entry *content* is hermetic
  // per zone, so the log's sorted/deduped snapshot is deterministic.
  void set_trace_log(obs::CutTraceLog* log) { trace_log_ = log; }

  size_t size() const;
  void Clear();
  CutCacheStats stats() const;  // snapshot

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::map<dns::Name, Entry> entries;
    size_t negatives = 0;  // unreachable entries currently held
  };

  Stripe& StripeFor(const dns::Name& cut) const;
  // Under the stripe lock: make room for one more negative. Returns the
  // number of negatives evicted (expired-first, then earliest expiry).
  size_t EvictNegativesLocked(Stripe& stripe, uint64_t now_ms);

  std::vector<std::unique_ptr<Stripe>> stripes_;
  size_t max_negatives_per_stripe_;
  mutable std::mutex stats_mu_;
  mutable CutCacheStats stats_;
  obs::CutTraceLog* trace_log_ = nullptr;
};

}  // namespace govdns::core
