// Analyses over active-measurement results (§IV).
//
// ActiveDataset bundles the per-domain MeasurementResults with the country
// metadata needed for the per-country breakdowns; the free functions below
// each regenerate one figure or table of the paper's evaluation.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/measure.h"
#include "core/types.h"
#include "geo/asn_db.h"
#include "registrar/registrar.h"
#include "registrar/suffix.h"

namespace govdns::core {

struct ActiveDataset {
  std::vector<MeasurementResult> results;
  std::vector<int> country;  // per result: index into metas, -1 unknown
  std::vector<CountryMeta> metas;
  std::vector<SeedDomain> seeds;

  // Maps each measured domain to the seed whose d_gov contains it.
  static ActiveDataset Build(std::vector<MeasurementResult> results,
                             std::vector<SeedDomain> seeds,
                             std::vector<CountryMeta> metas);

  // The paper's funnel: queried / parent responded / non-empty response.
  struct Funnel {
    int64_t queried = 0;
    int64_t parent_responded = 0;
    int64_t parent_has_records = 0;
    int64_t child_authoritative = 0;
  };
  Funnel ComputeFunnel() const;
};

// ---- Replication (Figures 8, 9) -------------------------------------------

struct ReplicationSummary {
  // CDF of |P ∪ C| over domains with parent records (Fig. 9).
  std::vector<std::pair<int, double>> ns_count_cdf;  // (count, cum fraction)
  double pct_at_least_two = 0.0;
  int64_t domains_considered = 0;
  int64_t d1ns_count = 0;
  // Fig. 8: share of d_1NS with no authoritative response, overall and for
  // the most affected countries.
  double d1ns_stale_pct = 0.0;
  struct CountryRow {
    std::string code;
    int64_t domains = 0;       // domains considered
    int64_t d1ns = 0;
    int64_t d1ns_stale = 0;    // no authoritative response
    int64_t min_two = 0;       // domains with >=2 NS
  };
  std::vector<CountryRow> by_country;  // every country with data
};
ReplicationSummary AnalyzeReplication(const ActiveDataset& dataset);

// ---- Diversity (Table I) ----------------------------------------------------

struct DiversityRow {
  std::string label;  // "Total" or country name
  int64_t domains = 0;           // multi-NS domains with resolved addresses
  double pct_multi_ip = 0.0;     // |IP| > 1
  double pct_multi_24 = 0.0;     // |/24| > 1
  double pct_multi_asn = 0.0;    // |ASN| > 1
};
// Rows: Total + the given country codes (the paper's top 10).
std::vector<DiversityRow> AnalyzeDiversity(
    const ActiveDataset& dataset, const geo::AsnDatabase& asn_db,
    const std::vector<std::string>& country_codes);

// Per-level (second vs third+ of the DNS hierarchy) multi-/24 shares, used
// for the §IV-A hierarchy discussion.
struct LevelDiversityRow {
  int level = 0;
  int64_t domains = 0;
  double pct_multi_24 = 0.0;
};
std::vector<LevelDiversityRow> AnalyzeDiversityByLevel(
    const ActiveDataset& dataset);

// ---- Defective delegations (Figure 10) -------------------------------------

enum class DelegationHealth {
  kHealthy,
  kPartiallyDefective,  // >=1 parent-listed NS does not serve the domain
  kFullyDefective,      // no parent-listed NS serves the domain
};
DelegationHealth ClassifyDelegation(const MeasurementResult& result);

struct DelegationSummary {
  int64_t domains_considered = 0;  // parent records present
  int64_t partially_defective = 0;
  int64_t fully_defective = 0;
  struct CountryRow {
    std::string code;
    int64_t domains = 0;
    int64_t partial = 0;
    int64_t full = 0;
  };
  std::vector<CountryRow> by_country;
};
DelegationSummary AnalyzeDelegations(const ActiveDataset& dataset);

// ---- Parent/child consistency (Figures 13, 14) -----------------------------

enum class ConsistencyClass {
  kEqual,            // P = C
  kChildSuperset,    // P ⊂ C
  kParentSuperset,   // C ⊂ P
  kOverlapNeither,   // intersection, neither contains the other
  kDisjointSharedIp, // no common name, common addresses
  kDisjoint,         // no common name, no common address
  kNotComparable,    // child never answered (no C)
};
ConsistencyClass ClassifyConsistency(const MeasurementResult& result);

struct ConsistencySummary {
  int64_t comparable = 0;
  std::map<ConsistencyClass, int64_t> counts;
  double pct_equal = 0.0;
  // Per DNS hierarchy level (the paper: 93.5% consistent at level 2).
  std::map<int, std::pair<int64_t, int64_t>> by_level;  // level -> (equal, total)
  struct CountryRow {
    std::string code;
    int64_t comparable = 0;
    int64_t disagree = 0;
  };
  std::vector<CountryRow> by_country;  // Fig. 14 input
  // §IV-D: share of P != C domains that also have a partial defect.
  double pct_disagree_with_partial_defect = 0.0;
};
ConsistencySummary AnalyzeConsistency(const ActiveDataset& dataset);

// ---- Hijack risk (Figures 11, 12; §IV-C/D) ----------------------------------

struct HijackSummary {
  // Defective-delegation path (§IV-C).
  int64_t candidate_ns_domains = 0;  // non-government d_ns seen in defects
  int64_t available_ns_domains = 0;
  int64_t affected_domains = 0;
  int64_t affected_countries = 0;
  int64_t multi_country_ns_domains = 0;  // available d_ns used by >1 country
  std::vector<double> prices_usd;        // per available d_ns (Fig. 12)
  struct CountryRow {
    std::string code;
    int64_t affected_domains = 0;
    int64_t available_ns_domains = 0;
  };
  std::vector<CountryRow> by_country;  // Fig. 11

  // Consistency path (§IV-D): dangling-but-responsive.
  int64_t dangling_available_ns = 0;
  int64_t dangling_domains = 0;
  int64_t dangling_countries = 0;
  std::vector<double> dangling_prices_usd;
};
HijackSummary AnalyzeHijackRisk(const ActiveDataset& dataset,
                                const registrar::PublicSuffixList& psl,
                                const registrar::RegistrarClient& registrar);

}  // namespace govdns::core
