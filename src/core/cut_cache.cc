#include "core/cut_cache.h"

namespace govdns::core {

SharedCutCache::SharedCutCache(size_t stripes) {
  if (stripes == 0) stripes = 1;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

SharedCutCache::Stripe& SharedCutCache::StripeFor(const dns::Name& cut) const {
  return *stripes_[dns::Name::Hash{}(cut) % stripes_.size()];
}

std::optional<SharedCutCache::Entry> SharedCutCache::Lookup(
    const dns::Name& cut) const {
  Stripe& stripe = StripeFor(cut);
  std::optional<Entry> out;
  {
    std::lock_guard lock(stripe.mu);
    auto it = stripe.entries.find(cut);
    if (it != stripe.entries.end()) out = it->second;
  }
  std::lock_guard stats_lock(stats_mu_);
  if (!out.has_value()) {
    ++stats_.misses;
  } else if (out->reachable) {
    ++stats_.hits;
  } else {
    ++stats_.negative_hits;
  }
  return out;
}

void SharedCutCache::Publish(const dns::Name& cut, Entry entry) {
  if (trace_log_ != nullptr) {
    trace_log_->Record(cut.ToString(), /*reachable=*/true,
                       static_cast<uint32_t>(entry.ns_names.size()),
                       static_cast<uint32_t>(entry.addresses.size()));
  }
  Stripe& stripe = StripeFor(cut);
  {
    std::lock_guard lock(stripe.mu);
    stripe.entries[cut] = std::move(entry);
  }
  std::lock_guard stats_lock(stats_mu_);
  ++stats_.publishes;
}

void SharedCutCache::PublishUnreachable(const dns::Name& cut,
                                        std::vector<dns::Name> ns_names,
                                        uint64_t expires_ms) {
  Entry entry;
  entry.ns_names = std::move(ns_names);
  entry.reachable = false;
  entry.expires_ms = expires_ms;
  if (trace_log_ != nullptr) {
    trace_log_->Record(cut.ToString(), /*reachable=*/false,
                       static_cast<uint32_t>(entry.ns_names.size()),
                       /*addr_count=*/0);
  }
  Stripe& stripe = StripeFor(cut);
  {
    std::lock_guard lock(stripe.mu);
    stripe.entries[cut] = std::move(entry);
  }
  std::lock_guard stats_lock(stats_mu_);
  ++stats_.negative_publishes;
}

void SharedCutCache::ChargeInfra(const ResolverCounters& effort) {
  std::lock_guard lock(stats_mu_);
  stats_.infra += effort;
}

size_t SharedCutCache::size() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    total += stripe->entries.size();
  }
  return total;
}

void SharedCutCache::Clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    stripe->entries.clear();
  }
}

CutCacheStats SharedCutCache::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

}  // namespace govdns::core
