#include "core/cut_cache.h"

#include <algorithm>

namespace govdns::core {

SharedCutCache::SharedCutCache(size_t stripes, size_t max_negatives_per_stripe)
    : max_negatives_per_stripe_(std::max<size_t>(1, max_negatives_per_stripe)) {
  if (stripes == 0) stripes = 1;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

SharedCutCache::Stripe& SharedCutCache::StripeFor(const dns::Name& cut) const {
  return *stripes_[dns::Name::Hash{}(cut) % stripes_.size()];
}

std::optional<SharedCutCache::Entry> SharedCutCache::Lookup(
    const dns::Name& cut) const {
  Stripe& stripe = StripeFor(cut);
  std::optional<Entry> out;
  {
    std::lock_guard lock(stripe.mu);
    auto it = stripe.entries.find(cut);
    if (it != stripe.entries.end()) out = it->second;
  }
  std::lock_guard stats_lock(stats_mu_);
  if (!out.has_value()) {
    ++stats_.misses;
  } else if (out->reachable) {
    ++stats_.hits;
  } else {
    ++stats_.negative_hits;
  }
  return out;
}

void SharedCutCache::Publish(const dns::Name& cut, Entry entry) {
  if (trace_log_ != nullptr) {
    trace_log_->Record(cut.ToString(), /*reachable=*/true,
                       static_cast<uint32_t>(entry.ns_names.size()),
                       static_cast<uint32_t>(entry.addresses.size()));
  }
  Stripe& stripe = StripeFor(cut);
  {
    std::lock_guard lock(stripe.mu);
    auto it = stripe.entries.find(cut);
    if (it != stripe.entries.end() && !it->second.reachable) {
      --stripe.negatives;  // a retried cut came back to life
    }
    stripe.entries[cut] = std::move(entry);
  }
  std::lock_guard stats_lock(stats_mu_);
  ++stats_.publishes;
}

size_t SharedCutCache::EvictNegativesLocked(Stripe& stripe, uint64_t now_ms) {
  if (stripe.negatives < max_negatives_per_stripe_) return 0;
  size_t evicted = 0;
  // Expired negatives are pure garbage — drop them all first.
  for (auto it = stripe.entries.begin(); it != stripe.entries.end();) {
    if (!it->second.reachable && it->second.expires_ms <= now_ms) {
      it = stripe.entries.erase(it);
      --stripe.negatives;
      ++evicted;
    } else {
      ++it;
    }
  }
  // Still full: drop the earliest-expiring live negatives until one slot
  // frees up. The victim order is (expires_ms, canonical name) — the key
  // tiebreak is explicit, not an artifact of std::map iteration order, so
  // same-expiry ties evict identically even if the container ever changes
  // (pinned by CutCacheCkptTest.NegativeEvictionTiebreakIsStable).
  while (stripe.negatives >= max_negatives_per_stripe_) {
    auto victim = stripe.entries.end();
    for (auto it = stripe.entries.begin(); it != stripe.entries.end(); ++it) {
      if (it->second.reachable) continue;
      if (victim == stripe.entries.end() ||
          it->second.expires_ms < victim->second.expires_ms ||
          (it->second.expires_ms == victim->second.expires_ms &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    if (victim == stripe.entries.end()) break;
    stripe.entries.erase(victim);
    --stripe.negatives;
    ++evicted;
  }
  return evicted;
}

void SharedCutCache::PublishUnreachable(const dns::Name& cut,
                                        std::vector<dns::Name> ns_names,
                                        uint64_t expires_ms, uint64_t now_ms) {
  Entry entry;
  entry.ns_names = std::move(ns_names);
  entry.reachable = false;
  entry.expires_ms = expires_ms;
  if (trace_log_ != nullptr) {
    trace_log_->Record(cut.ToString(), /*reachable=*/false,
                       static_cast<uint32_t>(entry.ns_names.size()),
                       /*addr_count=*/0);
  }
  Stripe& stripe = StripeFor(cut);
  size_t evicted = 0;
  {
    std::lock_guard lock(stripe.mu);
    auto it = stripe.entries.find(cut);
    const bool replacing_negative =
        it != stripe.entries.end() && !it->second.reachable;
    if (!replacing_negative) evicted = EvictNegativesLocked(stripe, now_ms);
    stripe.entries[cut] = std::move(entry);
    if (!replacing_negative) ++stripe.negatives;
  }
  std::lock_guard stats_lock(stats_mu_);
  ++stats_.negative_publishes;
  stats_.negative_evictions += evicted;
}

void SharedCutCache::ChargeInfra(const ResolverCounters& effort) {
  std::lock_guard lock(stats_mu_);
  stats_.infra += effort;
}

size_t SharedCutCache::size() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    total += stripe->entries.size();
  }
  return total;
}

void SharedCutCache::Clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    stripe->entries.clear();
    stripe->negatives = 0;
  }
}

std::vector<std::pair<dns::Name, SharedCutCache::Entry>>
SharedCutCache::Export() const {
  std::vector<std::pair<dns::Name, Entry>> out;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    for (const auto& [cut, entry] : stripe->entries) {
      out.emplace_back(cut, entry);
    }
  }
  // Stripe order depends on the hash layout; name order is canonical.
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

size_t SharedCutCache::Restore(
    const std::vector<std::pair<dns::Name, Entry>>& entries) {
  size_t restored = 0;
  for (const auto& [cut, entry] : entries) {
    if (!entry.reachable) continue;  // negatives never survive a restart
    Stripe& stripe = StripeFor(cut);
    std::lock_guard lock(stripe.mu);
    auto it = stripe.entries.find(cut);
    if (it != stripe.entries.end()) continue;  // live data wins over snapshot
    stripe.entries.emplace(cut, entry);
    ++restored;
  }
  return restored;
}

CutCacheStats SharedCutCache::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

}  // namespace govdns::core
