// Wall-clock supervision of measurement workers (DESIGN.md §6g).
//
// PhaseWatchdog is the liveness net under the deterministic deadline
// hierarchy: budgets and deadlines run on the *logical* transport clock, so
// a transport that genuinely blocks (a real network, a wedged handler)
// would stall a worker without ever advancing the clock that is supposed to
// bound it. The watchdog supervises real time instead: every worker posts a
// progress heartbeat before each domain; a supervisor thread polls, and a
// worker whose last heartbeat is older than the stall timeout gets its
// cancel flag raised. The resolver checks that flag between queries and
// fails the in-flight domain fast; the measurer requeues it once and
// quarantines it (kWatchdogCancelled) if it stalls again.
//
// Determinism: cancellation is wall-clock-driven and therefore excluded
// from every deterministic byte stream — the resolver neither counts nor
// traces it, and in pure simulation (where exchanges always return promptly)
// the watchdog never fires at all, so attaching one cannot change a healthy
// run's report.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace govdns::core {

class PhaseWatchdog {
 public:
  struct Options {
    // A worker is stalled when its last heartbeat is older than this many
    // wall-clock milliseconds.
    uint32_t stall_timeout_ms = 30000;
    // Supervisor poll interval.
    uint32_t poll_interval_ms = 20;
  };

  PhaseWatchdog(int workers, Options options);
  ~PhaseWatchdog();

  PhaseWatchdog(const PhaseWatchdog&) = delete;
  PhaseWatchdog& operator=(const PhaseWatchdog&) = delete;

  // Worker `w` reports progress (call before starting each unit of work).
  // Also re-arms the slot: a heartbeat after a cancellation starts a fresh
  // stall window.
  void Heartbeat(int w);

  // The cancel flag workers hand to their resolver (set_cancel_flag). Set
  // by the supervisor when the worker stalls; cleared by AckCancel.
  const std::atomic<bool>* cancel_flag(int w) const;

  // Worker `w` acknowledges (and clears) its cancellation after abandoning
  // the in-flight domain.
  void AckCancel(int w);

  // Total cancellations issued (diagnostic — wall-clock dependent).
  uint64_t total_cancels() const;

  // Stops the supervisor thread; idempotent. The destructor calls it.
  void Stop();

 private:
  struct Slot {
    std::atomic<uint64_t> last_beat_ns{0};
    std::atomic<bool> cancel{false};
  };

  static uint64_t NowNs();
  void SupervisorLoop();

  Options options_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<uint64_t> total_cancels_{0};
  std::atomic<bool> stop_{false};
  std::thread supervisor_;
};

}  // namespace govdns::core
