// Domain selection (§III-A): from the UN Knowledge Base's national-portal
// links to a verified d_gov per country.
//
// For each country the selector takes the portal FQDN from the KB link,
// falls back to the member-state questionnaire when the link is dead or
// the linked domain turns out to be squatted (detected by its nameservers
// pointing into a domain-parking service), and then extracts the deepest
// suffix of the FQDN that the ccTLD registry documents as restricted to
// government use. Without such documentation it falls back to the
// registered domain (the paper's gov.la / gov.tl / gov.jm cases and
// regjeringen.no).
#pragma once

#include <optional>
#include <vector>

#include "core/resolver.h"
#include "core/types.h"
#include "registrar/suffix.h"

namespace govdns::core {

// The registry-policy lookup the selector consults (what the paper dug out
// of IANA's root database and registrar documentation).
class RegistryPolicyLookup {
 public:
  virtual ~RegistryPolicyLookup() = default;
  // true/false: documented; nullopt: no documentation found.
  virtual std::optional<bool> IsRestricted(const dns::Name& suffix) const = 0;
};

struct KnowledgeBaseRecord {
  int country = -1;
  dns::Name portal_fqdn;                // from the KB page link
  std::optional<dns::Name> msq_fqdn;    // from the questionnaire
};

struct SelectionStats {
  int total = 0;
  int broken_links = 0;    // portal FQDN did not resolve
  int squatted_links = 0;  // linked domain parked by a third party
  int msq_fallbacks = 0;
  int registered_domain_fallbacks = 0;
};

struct SelectorOptions {
  // NS-domain fingerprints of known parking services.
  std::vector<dns::Name> parking_ns_domains = {
      dns::Name::FromString("parkmonster.com")};
};

class SeedSelector {
 public:
  using Options = SelectorOptions;

  SeedSelector(IterativeResolver* resolver,
               const registrar::PublicSuffixList* psl,
               const RegistryPolicyLookup* policy,
               SelectorOptions options = SelectorOptions());

  std::vector<SeedDomain> Select(const std::vector<KnowledgeBaseRecord>& kb,
                                 SelectionStats* stats = nullptr);

  // Extraction for one FQDN (exposed for tests): deepest restricted suffix,
  // else registered domain.
  std::optional<SeedDomain> ExtractSeed(int country, const dns::Name& fqdn);

 private:
  bool Resolves(const dns::Name& fqdn);
  bool LooksSquatted(const dns::Name& fqdn);

  IterativeResolver* resolver_;
  const registrar::PublicSuffixList* psl_;
  const RegistryPolicyLookup* policy_;
  SelectorOptions options_;
};

}  // namespace govdns::core
