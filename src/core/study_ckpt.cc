#include "core/study_ckpt.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "ckpt/serial.h"
#include "core/study.h"
#include "util/json.h"

namespace govdns::core {

namespace {

// Payload kind tags: a frame renamed on disk (or a name collision) must
// decode as a clean reject, not as a different phase's data.
constexpr uint8_t kKindSelection = 1;
constexpr uint8_t kKindMining = 2;
constexpr uint8_t kKindBatch = 3;
constexpr uint8_t kKindCutCache = 4;
constexpr uint8_t kKindReport = 5;
constexpr uint8_t kKindQuarantine = 6;

constexpr char kSelectionFrame[] = "selection";
constexpr char kMiningFrame[] = "mining";
constexpr char kCutCacheFrame[] = "cutcache";
constexpr char kReportFrame[] = "report";
constexpr char kQuarantineFrame[] = "quarantine";

std::string BatchFrameName(size_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "active_%06zu", seq);
  return buf;
}

// --- field codecs ----------------------------------------------------------

void PutName(ckpt::Writer& w, const dns::Name& name) {
  w.U8(static_cast<uint8_t>(name.LabelCount()));
  for (const std::string& label : name.labels()) w.Str(label);
}

bool GetName(ckpt::Reader& r, dns::Name* out) {
  uint8_t count = 0;
  if (!r.U8(&count)) return false;
  std::vector<std::string> labels(count);
  for (uint8_t i = 0; i < count; ++i) {
    if (!r.Str(&labels[i])) return false;
  }
  auto name = dns::Name::FromLabels(std::move(labels));
  if (!name.ok()) return false;
  *out = *std::move(name);
  return true;
}

void PutNameList(ckpt::Writer& w, const std::vector<dns::Name>& names) {
  w.Size(names.size());
  for (const dns::Name& n : names) PutName(w, n);
}

bool GetNameList(ckpt::Reader& r, std::vector<dns::Name>* out) {
  size_t count = 0;
  if (!r.Count(&count)) return false;
  out->resize(count);
  for (size_t i = 0; i < count; ++i) {
    if (!GetName(r, &(*out)[i])) return false;
  }
  return true;
}

void PutAddrList(ckpt::Writer& w, const std::vector<geo::IPv4>& addrs) {
  w.Size(addrs.size());
  for (const geo::IPv4 a : addrs) w.U32(a.bits());
}

bool GetAddrList(ckpt::Reader& r, std::vector<geo::IPv4>* out) {
  size_t count = 0;
  if (!r.Count(&count)) return false;
  out->clear();
  out->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint32_t bits = 0;
    if (!r.U32(&bits)) return false;
    out->push_back(geo::IPv4(bits));
  }
  return true;
}

void PutCounters(ckpt::Writer& w, const ResolverCounters& c) {
  w.U64(c.queries);
  w.U64(c.retries);
  w.U64(c.timeouts);
  w.U64(c.unreachable);
  w.U64(c.refused);
  w.U64(c.malformed);
  w.U64(c.wrong_id);
  w.U64(c.truncated);
  w.U64(c.backoff_ms);
  w.U64(c.breaker_skips);
  w.U64(c.negative_cache_hits);
  w.U64(c.budget_denied);
  w.U64(c.deadline_denied);
}

bool GetCounters(ckpt::Reader& r, ResolverCounters* c) {
  return r.U64(&c->queries) && r.U64(&c->retries) && r.U64(&c->timeouts) &&
         r.U64(&c->unreachable) && r.U64(&c->refused) && r.U64(&c->malformed) &&
         r.U64(&c->wrong_id) && r.U64(&c->truncated) && r.U64(&c->backoff_ms) &&
         r.U64(&c->breaker_skips) && r.U64(&c->negative_cache_hits) &&
         r.U64(&c->budget_denied) && r.U64(&c->deadline_denied);
}

void PutProfile(ckpt::Writer& w, const std::vector<obs::PhaseRecord>& records) {
  w.Size(records.size());
  for (const obs::PhaseRecord& rec : records) {
    w.Str(rec.name);
    w.I64(rec.items);
    w.U64(rec.logical_ms);
    w.F64(rec.wall_ms);
  }
}

bool GetProfile(ckpt::Reader& r, std::vector<obs::PhaseRecord>* out) {
  size_t count = 0;
  if (!r.Count(&count)) return false;
  out->resize(count);
  for (size_t i = 0; i < count; ++i) {
    obs::PhaseRecord& rec = (*out)[i];
    if (!r.Str(&rec.name) || !r.I64(&rec.items) || !r.U64(&rec.logical_ms) ||
        !r.F64(&rec.wall_ms)) {
      return false;
    }
  }
  return true;
}

void PutMiningConfig(ckpt::Writer& w, const MiningConfig& c) {
  w.I32(c.first_year);
  w.I32(c.last_year);
  w.I32(c.stability_days);
  w.U8(static_cast<uint8_t>(c.statistic));
  w.I32(c.active_window.first);
  w.I32(c.active_window.last);
  w.Bool(c.filter_disposable);
  w.Bool(c.require_stable_for_active);
}

bool GetMiningConfig(ckpt::Reader& r, MiningConfig* c) {
  uint8_t statistic = 0;
  if (!r.I32(&c->first_year) || !r.I32(&c->last_year) ||
      !r.I32(&c->stability_days) || !r.U8(&statistic) ||
      !r.I32(&c->active_window.first) || !r.I32(&c->active_window.last) ||
      !r.Bool(&c->filter_disposable) ||
      !r.Bool(&c->require_stable_for_active)) {
    return false;
  }
  if (statistic > static_cast<uint8_t>(YearlyStatistic::kMean)) return false;
  c->statistic = static_cast<YearlyStatistic>(statistic);
  return true;
}

void PutResult(ckpt::Writer& w, const MeasurementResult& res) {
  PutName(w, res.domain);
  w.Bool(res.parent_located);
  PutName(w, res.parent_zone);
  w.Bool(res.parent_responded);
  w.Bool(res.parent_has_records);
  w.Bool(res.parent_answered_authoritatively);
  PutNameList(w, res.parent_ns);
  PutNameList(w, res.child_ns);
  w.Bool(res.child_any_authoritative);
  w.Size(res.hosts.size());
  for (const NsHostResult& host : res.hosts) {
    PutName(w, host.host);
    PutAddrList(w, host.addresses);
    w.U8(static_cast<uint8_t>(host.status));
    w.Bool(host.in_parent_set);
    w.Bool(host.in_child_set);
  }
  w.Bool(res.soa.has_value());
  if (res.soa.has_value()) {
    PutName(w, res.soa->mname);
    PutName(w, res.soa->rname);
    w.U32(res.soa->serial);
    w.U32(res.soa->refresh);
    w.U32(res.soa->retry);
    w.U32(res.soa->expire);
    w.U32(res.soa->minimum);
  }
  w.I32(res.rounds);
  PutCounters(w, res.query_stats);
  w.Bool(res.degraded);
  w.U64(res.logical_ms);
  w.U8(static_cast<uint8_t>(res.quarantine_reason));
}

bool GetResult(ckpt::Reader& r, MeasurementResult* res) {
  if (!GetName(r, &res->domain) || !r.Bool(&res->parent_located) ||
      !GetName(r, &res->parent_zone) || !r.Bool(&res->parent_responded) ||
      !r.Bool(&res->parent_has_records) ||
      !r.Bool(&res->parent_answered_authoritatively) ||
      !GetNameList(r, &res->parent_ns) || !GetNameList(r, &res->child_ns) ||
      !r.Bool(&res->child_any_authoritative)) {
    return false;
  }
  size_t host_count = 0;
  if (!r.Count(&host_count)) return false;
  res->hosts.resize(host_count);
  for (size_t i = 0; i < host_count; ++i) {
    NsHostResult& host = res->hosts[i];
    uint8_t status = 0;
    if (!GetName(r, &host.host) || !GetAddrList(r, &host.addresses) ||
        !r.U8(&status) || !r.Bool(&host.in_parent_set) ||
        !r.Bool(&host.in_child_set)) {
      return false;
    }
    if (status > static_cast<uint8_t>(NsHostStatus::kUnresolvable)) {
      return false;
    }
    host.status = static_cast<NsHostStatus>(status);
  }
  bool has_soa = false;
  if (!r.Bool(&has_soa)) return false;
  if (has_soa) {
    dns::SoaRdata soa;
    if (!GetName(r, &soa.mname) || !GetName(r, &soa.rname) ||
        !r.U32(&soa.serial) || !r.U32(&soa.refresh) || !r.U32(&soa.retry) ||
        !r.U32(&soa.expire) || !r.U32(&soa.minimum)) {
      return false;
    }
    res->soa = std::move(soa);
  } else {
    res->soa.reset();
  }
  uint8_t reason = 0;
  if (!r.I32(&res->rounds) || !GetCounters(r, &res->query_stats) ||
      !r.Bool(&res->degraded) || !r.U64(&res->logical_ms) || !r.U8(&reason) ||
      reason > kMaxQuarantineReason) {
    return false;
  }
  res->quarantine_reason = static_cast<QuarantineReason>(reason);
  return true;
}

}  // namespace

StudyCheckpoint::StudyCheckpoint(std::string dir, uint64_t config_fingerprint,
                                 StudyCheckpointOptions options)
    : journal_(std::move(dir), config_fingerprint),
      options_(options),
      base_fingerprint_(config_fingerprint) {
  if (options_.batch_size == 0) options_.batch_size = 1;
}

void StudyCheckpoint::Bind(uint64_t study_fingerprint) {
  GOVDNS_CHECK(!bound_);
  bound_ = true;
  journal_.set_fingerprint(
      ckpt::MixFingerprint(base_fingerprint_, study_fingerprint));
  if (!options_.resume) journal_.WipeAll();
}

void StudyCheckpoint::set_fault_plan(const ckpt::CkptFaultPlan& plan) {
  journal_.set_fault_plan(plan);
}

std::optional<StudyCheckpoint::SelectionSnapshot>
StudyCheckpoint::TryLoadSelection() {
  GOVDNS_CHECK(bound_);
  if (!options_.resume) return std::nullopt;
  auto frame = journal_.Load(kSelectionFrame, /*parent_crc=*/0);
  if (!frame.ok()) return std::nullopt;
  ckpt::Reader r(frame->payload);
  uint8_t kind = 0;
  SelectionSnapshot snap;
  size_t seed_count = 0;
  bool ok = r.U8(&kind) && kind == kKindSelection && r.Count(&seed_count);
  if (ok) {
    snap.seeds.resize(seed_count);
    for (size_t i = 0; ok && i < seed_count; ++i) {
      SeedDomain& seed = snap.seeds[i];
      uint8_t verification = 0;
      ok = r.I32(&seed.country) && GetName(r, &seed.d_gov) &&
           r.U8(&verification) && r.Bool(&seed.used_msq_fallback) &&
           verification <= static_cast<uint8_t>(SeedVerification::kMsqCrossCheck);
      if (ok) seed.verification = static_cast<SeedVerification>(verification);
    }
  }
  ok = ok && r.I32(&snap.stats.total) && r.I32(&snap.stats.broken_links) &&
       r.I32(&snap.stats.squatted_links) && r.I32(&snap.stats.msq_fallbacks) &&
       r.I32(&snap.stats.registered_domain_fallbacks) &&
       GetProfile(r, &snap.profile) && r.AtEnd();
  if (!ok) {
    ++stats_.decode_rejects;
    return std::nullopt;
  }
  have_selection_ = true;
  selection_crc_ = frame->crc;
  ++stats_.phases_loaded;
  return snap;
}

void StudyCheckpoint::SaveSelection(const SelectionSnapshot& snap) {
  GOVDNS_CHECK(bound_);
  ckpt::Writer w;
  w.U8(kKindSelection);
  w.Size(snap.seeds.size());
  for (const SeedDomain& seed : snap.seeds) {
    w.I32(seed.country);
    PutName(w, seed.d_gov);
    w.U8(static_cast<uint8_t>(seed.verification));
    w.Bool(seed.used_msq_fallback);
  }
  w.I32(snap.stats.total);
  w.I32(snap.stats.broken_links);
  w.I32(snap.stats.squatted_links);
  w.I32(snap.stats.msq_fallbacks);
  w.I32(snap.stats.registered_domain_fallbacks);
  PutProfile(w, snap.profile);
  auto crc = journal_.Commit(kSelectionFrame, w.Take(), /*parent_crc=*/0);
  if (!crc.ok()) {
    throw PipelineError("checkpoint", "selection: " + crc.status().ToString());
  }
  have_selection_ = true;
  selection_crc_ = *crc;
  ++stats_.phases_saved;
}

std::optional<StudyCheckpoint::MiningSnapshot> StudyCheckpoint::TryLoadMining(
    const MiningConfig& expected_config) {
  GOVDNS_CHECK(bound_);
  if (!options_.resume || !have_selection_) return std::nullopt;
  auto frame = journal_.Load(kMiningFrame, selection_crc_);
  if (!frame.ok()) return std::nullopt;
  ckpt::Reader r(frame->payload);
  uint8_t kind = 0;
  MiningSnapshot snap;
  bool ok = r.U8(&kind) && kind == kKindMining &&
            GetMiningConfig(r, &snap.dataset.config);
  size_t ns_count = 0;
  ok = ok && r.Count(&ns_count);
  if (ok) {
    snap.dataset.ns_names.resize(ns_count);
    for (size_t i = 0; ok && i < ns_count; ++i) {
      ok = r.Str(&snap.dataset.ns_names[i]);
    }
  }
  size_t domain_count = 0;
  ok = ok && r.Count(&domain_count);
  if (ok) {
    snap.dataset.domains.resize(domain_count);
    for (size_t i = 0; ok && i < domain_count; ++i) {
      MinedDomain& dom = snap.dataset.domains[i];
      size_t year_count = 0;
      ok = GetName(r, &dom.name) && r.I32(&dom.country) &&
           r.I32(&dom.seed_index) && r.Count(&year_count);
      if (ok) {
        dom.years.resize(year_count);
        for (size_t y = 0; ok && y < year_count; ++y) {
          YearState& ys = dom.years[y];
          size_t id_count = 0;
          ok = r.I32(&ys.mode_ns_count) && r.Count(&id_count);
          if (ok) {
            ys.ns_ids.resize(id_count);
            for (size_t k = 0; ok && k < id_count; ++k) {
              ok = r.I32(&ys.ns_ids[k]);
            }
          }
        }
      }
      ok = ok && r.Bool(&dom.disposable) && r.Bool(&dom.in_active_window);
    }
  }
  MiningStats& s = snap.dataset.stats;
  ok = ok && r.I64(&s.seeds) && r.I64(&s.entries_scanned) &&
       r.I64(&s.entries_unstable) && r.I64(&s.domains) &&
       r.I64(&s.domains_disposable) && r.I64(&s.domains_in_active_window) &&
       GetProfile(r, &snap.profile) && r.AtEnd();
  // A decoded dataset mined under a different MiningConfig is stale data,
  // even though the frame itself validated.
  ok = ok && snap.dataset.config == expected_config;
  if (!ok) {
    ++stats_.decode_rejects;
    return std::nullopt;
  }
  have_mining_ = true;
  mining_crc_ = frame->crc;
  chain_crc_ = frame->crc;
  ++stats_.phases_loaded;
  return snap;
}

void StudyCheckpoint::SaveMining(const MiningSnapshot& snap) {
  GOVDNS_CHECK(bound_);
  GOVDNS_CHECK(have_selection_);
  ckpt::Writer w;
  w.U8(kKindMining);
  PutMiningConfig(w, snap.dataset.config);
  w.Size(snap.dataset.ns_names.size());
  for (const std::string& name : snap.dataset.ns_names) w.Str(name);
  w.Size(snap.dataset.domains.size());
  for (const MinedDomain& dom : snap.dataset.domains) {
    PutName(w, dom.name);
    w.I32(dom.country);
    w.I32(dom.seed_index);
    w.Size(dom.years.size());
    for (const YearState& ys : dom.years) {
      w.I32(ys.mode_ns_count);
      w.Size(ys.ns_ids.size());
      for (const int32_t id : ys.ns_ids) w.I32(id);
    }
    w.Bool(dom.disposable);
    w.Bool(dom.in_active_window);
  }
  const MiningStats& s = snap.dataset.stats;
  w.I64(s.seeds);
  w.I64(s.entries_scanned);
  w.I64(s.entries_unstable);
  w.I64(s.domains);
  w.I64(s.domains_disposable);
  w.I64(s.domains_in_active_window);
  PutProfile(w, snap.profile);
  auto crc = journal_.Commit(kMiningFrame, w.Take(), selection_crc_);
  if (!crc.ok()) {
    throw PipelineError("checkpoint", "mining: " + crc.status().ToString());
  }
  have_mining_ = true;
  mining_crc_ = *crc;
  chain_crc_ = *crc;
  ++stats_.phases_saved;
}

std::vector<MeasurementResult> StudyCheckpoint::LoadActiveBatches(
    size_t expected_total) {
  GOVDNS_CHECK(bound_);
  GOVDNS_CHECK(have_mining_);
  chain_crc_ = mining_crc_;
  next_batch_ = 0;
  results_journaled_ = 0;
  std::vector<MeasurementResult> out;
  if (!options_.resume) return out;
  while (out.size() < expected_total) {
    auto frame = journal_.Load(BatchFrameName(next_batch_), chain_crc_);
    if (!frame.ok()) break;
    ckpt::Reader r(frame->payload);
    uint8_t kind = 0;
    uint64_t begin = 0;
    size_t count = 0;
    if (!r.U8(&kind) || kind != kKindBatch || !r.U64(&begin) ||
        !r.Count(&count) || begin != out.size() || count == 0 ||
        begin + count > expected_total) {
      ++stats_.decode_rejects;
      break;
    }
    std::vector<MeasurementResult> part(count);
    bool ok = true;
    for (size_t i = 0; ok && i < count; ++i) {
      ok = GetResult(r, &part[i]);
    }
    if (!ok || !r.AtEnd()) {
      ++stats_.decode_rejects;
      break;
    }
    for (MeasurementResult& res : part) out.push_back(std::move(res));
    chain_crc_ = frame->crc;
    ++next_batch_;
    ++stats_.batches_loaded;
    stats_.results_loaded += count;
  }
  results_journaled_ = out.size();
  return out;
}

void StudyCheckpoint::AppendActiveBatch(
    size_t begin_index, const std::vector<MeasurementResult>& results) {
  GOVDNS_CHECK(bound_);
  GOVDNS_CHECK(have_mining_);
  GOVDNS_CHECK(begin_index == results_journaled_);
  ckpt::Writer w;
  w.U8(kKindBatch);
  w.U64(begin_index);
  w.Size(results.size());
  for (const MeasurementResult& res : results) PutResult(w, res);
  auto crc = journal_.Commit(BatchFrameName(next_batch_), w.Take(), chain_crc_);
  if (!crc.ok()) {
    throw PipelineError("checkpoint",
                        BatchFrameName(next_batch_) + ": " +
                            crc.status().ToString());
  }
  chain_crc_ = *crc;
  ++next_batch_;
  ++stats_.batches_saved;
  results_journaled_ += results.size();
}

void StudyCheckpoint::SaveCutCacheSnapshot(const SharedCutCache& cache) {
  GOVDNS_CHECK(bound_);
  GOVDNS_CHECK(have_mining_);
  std::vector<std::pair<dns::Name, SharedCutCache::Entry>> entries =
      cache.Export();
  // Reachable entries only: negatives must re-expire on the resumed run's
  // logical clock, never replay from disk (see header comment).
  std::erase_if(entries, [](const auto& e) { return !e.second.reachable; });
  ckpt::Writer w;
  w.U8(kKindCutCache);
  w.Size(entries.size());
  for (const auto& [cut, entry] : entries) {
    PutName(w, cut);
    PutNameList(w, entry.ns_names);
    PutAddrList(w, entry.addresses);
  }
  // Chained to mining, not to the batch chain: the warm start is valid
  // whenever the mined query list is, regardless of how many batches landed.
  auto crc = journal_.Commit(kCutCacheFrame, w.Take(), mining_crc_);
  if (!crc.ok()) {
    throw PipelineError("checkpoint", "cutcache: " + crc.status().ToString());
  }
}

size_t StudyCheckpoint::RestoreCutCache(SharedCutCache* cache) {
  GOVDNS_CHECK(bound_);
  GOVDNS_CHECK(have_mining_);
  if (!options_.resume) return 0;
  auto frame = journal_.Load(kCutCacheFrame, mining_crc_);
  if (!frame.ok()) return 0;
  ckpt::Reader r(frame->payload);
  uint8_t kind = 0;
  size_t count = 0;
  if (!r.U8(&kind) || kind != kKindCutCache || !r.Count(&count)) {
    ++stats_.decode_rejects;
    return 0;
  }
  std::vector<std::pair<dns::Name, SharedCutCache::Entry>> entries(count);
  for (size_t i = 0; i < count; ++i) {
    if (!GetName(r, &entries[i].first) ||
        !GetNameList(r, &entries[i].second.ns_names) ||
        !GetAddrList(r, &entries[i].second.addresses)) {
      ++stats_.decode_rejects;
      return 0;
    }
    entries[i].second.reachable = true;
  }
  if (!r.AtEnd()) {
    ++stats_.decode_rejects;
    return 0;
  }
  const size_t restored = cache->Restore(entries);
  stats_.cache_entries_restored += static_cast<int64_t>(restored);
  return restored;
}

std::optional<StudyCheckpoint::QuarantineSnapshot>
StudyCheckpoint::TryLoadQuarantine() {
  GOVDNS_CHECK(bound_);
  if (!options_.resume || !have_mining_) return std::nullopt;
  auto frame = journal_.Load(kQuarantineFrame, chain_crc_);
  if (!frame.ok()) return std::nullopt;
  ckpt::Reader r(frame->payload);
  uint8_t kind = 0;
  QuarantineSnapshot snap;
  if (!r.U8(&kind) || kind != kKindQuarantine || !r.U64(&snap.total) ||
      !r.U64(&snap.hang) || !r.U64(&snap.blackhole) ||
      !r.U64(&snap.budget_exceeded) || !r.U64(&snap.watchdog_cancelled) ||
      !r.U64(&snap.vantage_lost) || !r.AtEnd()) {
    ++stats_.decode_rejects;
    return std::nullopt;
  }
  // The report frame chains after the quarantine frame once one exists.
  chain_crc_ = frame->crc;
  return snap;
}

void StudyCheckpoint::SaveQuarantine(const QuarantineSnapshot& snap) {
  GOVDNS_CHECK(bound_);
  GOVDNS_CHECK(have_mining_);
  ckpt::Writer w;
  w.U8(kKindQuarantine);
  w.U64(snap.total);
  w.U64(snap.hang);
  w.U64(snap.blackhole);
  w.U64(snap.budget_exceeded);
  w.U64(snap.watchdog_cancelled);
  w.U64(snap.vantage_lost);
  auto crc = journal_.Commit(kQuarantineFrame, w.Take(), chain_crc_);
  if (!crc.ok()) {
    throw PipelineError("checkpoint", "quarantine: " + crc.status().ToString());
  }
  chain_crc_ = *crc;
}

void StudyCheckpoint::SaveReportJson(const std::string& json) {
  GOVDNS_CHECK(bound_);
  GOVDNS_CHECK(have_mining_);
  ckpt::Writer w;
  w.U8(kKindReport);
  w.Str(json);
  auto crc = journal_.Commit(kReportFrame, w.Take(), chain_crc_);
  if (!crc.ok()) {
    throw PipelineError("checkpoint", "report: " + crc.status().ToString());
  }
}

std::optional<std::string> StudyCheckpoint::TryLoadReportJson() {
  GOVDNS_CHECK(bound_);
  if (!options_.resume || !have_mining_) return std::nullopt;
  auto frame = journal_.Load(kReportFrame, chain_crc_);
  if (!frame.ok()) return std::nullopt;
  ckpt::Reader r(frame->payload);
  uint8_t kind = 0;
  std::string json;
  if (!r.U8(&kind) || kind != kKindReport || !r.Str(&json) || !r.AtEnd()) {
    ++stats_.decode_rejects;
    return std::nullopt;
  }
  return json;
}

void StudyCheckpoint::SaveVantage(const VantageSummary& summary) {
  GOVDNS_CHECK(bound_);
  ckpt::Writer w;
  EncodeVantageSummary(w, summary);
  auto crc = journal_.Commit(kVantageFrameName, w.Take(), /*parent_crc=*/0);
  if (!crc.ok()) {
    throw PipelineError("checkpoint", "vantage: " + crc.status().ToString());
  }
}

std::optional<VantageSummary> StudyCheckpoint::TryLoadVantage() {
  GOVDNS_CHECK(bound_);
  if (!options_.resume) return std::nullopt;
  auto frame = journal_.Load(kVantageFrameName, /*parent_crc=*/0);
  if (!frame.ok()) return std::nullopt;
  ckpt::Reader r(frame->payload);
  VantageSummary summary;
  if (!DecodeVantageSummary(r, &summary)) {
    ++stats_.decode_rejects;
    return std::nullopt;
  }
  return summary;
}

std::string StudyCheckpoint::StatsJson() const {
  const ckpt::JournalStats& js = journal_.stats();
  util::JsonWriter w;
  w.BeginObject();
  w.Kv("commits", static_cast<int64_t>(js.commits));
  w.Kv("bytes_written", static_cast<int64_t>(js.bytes_written));
  w.Kv("loads_ok", static_cast<int64_t>(js.loads_ok));
  w.Kv("rejections", static_cast<int64_t>(js.Rejections()));
  w.Key("rejected").BeginObject();
  w.Kv("missing", static_cast<int64_t>(js.rejected_missing));
  w.Kv("truncated", static_cast<int64_t>(js.rejected_truncated));
  w.Kv("magic", static_cast<int64_t>(js.rejected_magic));
  w.Kv("version", static_cast<int64_t>(js.rejected_version));
  w.Kv("fingerprint", static_cast<int64_t>(js.rejected_fingerprint));
  w.Kv("crc", static_cast<int64_t>(js.rejected_crc));
  w.Kv("chain", static_cast<int64_t>(js.rejected_chain));
  w.EndObject();
  w.Kv("phases_loaded", stats_.phases_loaded);
  w.Kv("phases_saved", stats_.phases_saved);
  w.Kv("batches_loaded", stats_.batches_loaded);
  w.Kv("batches_saved", stats_.batches_saved);
  w.Kv("results_loaded", stats_.results_loaded);
  w.Kv("cache_entries_restored", stats_.cache_entries_restored);
  w.Kv("decode_rejects", stats_.decode_rejects);
  w.EndObject();
  return w.TakeString();
}

}  // namespace govdns::core
