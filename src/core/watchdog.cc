#include "core/watchdog.h"

#include <chrono>

#include "util/status.h"

namespace govdns::core {

uint64_t PhaseWatchdog::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

PhaseWatchdog::PhaseWatchdog(int workers, Options options)
    : options_(options) {
  GOVDNS_CHECK(workers > 0);
  slots_.reserve(workers);
  const uint64_t now = NowNs();
  for (int w = 0; w < workers; ++w) {
    auto slot = std::make_unique<Slot>();
    slot->last_beat_ns.store(now, std::memory_order_relaxed);
    slots_.push_back(std::move(slot));
  }
  supervisor_ = std::thread([this] { SupervisorLoop(); });
}

PhaseWatchdog::~PhaseWatchdog() { Stop(); }

void PhaseWatchdog::Heartbeat(int w) {
  slots_[w]->last_beat_ns.store(NowNs(), std::memory_order_relaxed);
}

const std::atomic<bool>* PhaseWatchdog::cancel_flag(int w) const {
  return &slots_[w]->cancel;
}

void PhaseWatchdog::AckCancel(int w) {
  slots_[w]->cancel.store(false, std::memory_order_relaxed);
  Heartbeat(w);
}

uint64_t PhaseWatchdog::total_cancels() const {
  return total_cancels_.load(std::memory_order_relaxed);
}

void PhaseWatchdog::Stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  if (supervisor_.joinable()) supervisor_.join();
}

void PhaseWatchdog::SupervisorLoop() {
  const uint64_t stall_ns = uint64_t{options_.stall_timeout_ms} * 1000000u;
  while (!stop_.load(std::memory_order_relaxed)) {
    const uint64_t now = NowNs();
    for (auto& slot : slots_) {
      if (slot->cancel.load(std::memory_order_relaxed)) continue;
      const uint64_t beat = slot->last_beat_ns.load(std::memory_order_relaxed);
      if (now > beat && now - beat > stall_ns) {
        slot->cancel.store(true, std::memory_order_relaxed);
        total_cancels_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_interval_ms));
  }
}

}  // namespace govdns::core
