#include "core/measure.h"

#include <algorithm>
#include <set>

namespace govdns::core {

std::vector<geo::IPv4> MeasurementResult::NsAddresses() const {
  std::vector<geo::IPv4> out;
  for (const NsHostResult& h : hosts) {
    out.insert(out.end(), h.addresses.begin(), h.addresses.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<dns::Name> MeasurementResult::AllNs() const {
  std::set<dns::Name> names(parent_ns.begin(), parent_ns.end());
  names.insert(child_ns.begin(), child_ns.end());
  return {names.begin(), names.end()};
}

ActiveMeasurer::ActiveMeasurer(IterativeResolver* resolver,
                               MeasurerOptions options)
    : resolver_(resolver), options_(options) {
  GOVDNS_CHECK(resolver != nullptr);
}

MeasurementResult ActiveMeasurer::Measure(const dns::Name& domain) {
  MeasurementResult result;
  result.domain = domain;
  // Charge everything this domain costs — including resolution detours —
  // against one hard budget, and attribute the per-outcome counters to it.
  const ResolverCounters before = resolver_->counters();
  resolver_->ArmQueryBudget(options_.max_queries_per_domain);
  MeasureInternal(result);
  result.degraded = resolver_->BudgetExhausted();
  resolver_->DisarmQueryBudget();
  result.query_stats = resolver_->counters() - before;
  return result;
}

void ActiveMeasurer::MeasureInternal(MeasurementResult& result) {
  const dns::Name& domain = result.domain;

  // --- Step 1: find and query the parent zone's servers. ------------------
  auto parent = resolver_->FindEnclosingZoneServers(domain);
  if (!parent.ok()) return;  // parent unreachable / unresolvable
  result.parent_located = true;
  result.parent_zone = parent->zone;

  std::set<dns::Name> parent_set;
  std::vector<dns::ResourceRecord> parent_glue;
  for (geo::IPv4 server : parent->addresses) {
    ServerReply reply = resolver_->QueryServer(server, domain, dns::RRType::kNS);
    switch (reply.outcome) {
      case QueryOutcome::kTimeout:
      case QueryOutcome::kUnreachable:
      case QueryOutcome::kMalformed:
        continue;
      default:
        result.parent_responded = true;
        break;
    }
    const dns::Message& m = *reply.message;
    if (reply.outcome == QueryOutcome::kReferral) {
      for (const dns::ResourceRecord& rr : m.authority) {
        if (rr.type() == dns::RRType::kNS && rr.name == domain) {
          parent_set.insert(std::get<dns::NsRdata>(rr.rdata).nameserver);
        }
      }
      for (const dns::ResourceRecord& rr : m.additional) {
        if (rr.type() == dns::RRType::kA) parent_glue.push_back(rr);
      }
    } else if (reply.outcome == QueryOutcome::kAuthAnswer) {
      // Parent and child on the same servers: the "parent view" is already
      // the child's authoritative data (§IV-D cannot distinguish them).
      result.parent_answered_authoritatively = true;
      for (const dns::ResourceRecord& rr : m.answers) {
        if (rr.type() == dns::RRType::kNS && rr.name == domain) {
          parent_set.insert(std::get<dns::NsRdata>(rr.rdata).nameserver);
        }
      }
    }
    // kAuthNegative / kRefused / kNonAuthAnswer contribute no records.
  }
  result.parent_ns.assign(parent_set.begin(), parent_set.end());
  result.parent_has_records = !result.parent_ns.empty();
  if (!result.parent_has_records) return;

  // Stash referral glue into the resolver-independent host map later; keep
  // a local index for address resolution.
  std::map<dns::Name, std::vector<geo::IPv4>> glue_index;
  for (const dns::ResourceRecord& rr : parent_glue) {
    glue_index[rr.name].push_back(std::get<dns::ARdata>(rr.rdata).address);
  }

  // --- Steps 3-5: query the domain's own servers. --------------------------
  std::set<dns::Name> seen_hosts;
  for (const dns::Name& ns : result.parent_ns) {
    NsHostResult host;
    host.host = ns;
    host.in_parent_set = true;
    if (auto it = glue_index.find(ns); it != glue_index.end()) {
      host.addresses = it->second;
    }
    result.hosts.push_back(std::move(host));
    seen_hosts.insert(ns);
  }

  QueryChildServers(result);

  // Newly discovered child-side NS hostnames get queried too (step 4).
  bool added = false;
  for (const dns::Name& ns : result.child_ns) {
    if (seen_hosts.insert(ns).second) {
      NsHostResult host;
      host.host = ns;
      host.in_child_set = true;
      result.hosts.push_back(std::move(host));
      added = true;
    }
  }
  for (NsHostResult& host : result.hosts) {
    if (std::find(result.child_ns.begin(), result.child_ns.end(), host.host) !=
        result.child_ns.end()) {
      host.in_child_set = true;
    }
  }
  if (added) QueryChildServers(result);

  // --- Round 2 (§III-B): parent had records but no child ever answered. ---
  if (options_.second_round && !result.child_any_authoritative) {
    result.rounds = 2;
    QueryChildServers(result);
  }
}

void ActiveMeasurer::QueryChildServers(MeasurementResult& result) {
  for (NsHostResult& host : result.hosts) {
    if (host.status == NsHostStatus::kAuthoritative) continue;

    if (host.addresses.empty()) {
      auto addrs = resolver_->ResolveAddresses(host.host);
      if (addrs.ok()) host.addresses = *addrs;
    }
    if (host.addresses.empty()) {
      host.status = NsHostStatus::kUnresolvable;
      continue;
    }

    NsHostStatus best = NsHostStatus::kNoResponse;
    auto better = [](NsHostStatus a, NsHostStatus b) {
      auto rank = [](NsHostStatus s) {
        switch (s) {
          case NsHostStatus::kAuthoritative: return 4;
          case NsHostStatus::kNonAuthoritative: return 3;
          case NsHostStatus::kRefused: return 2;
          case NsHostStatus::kNoResponse: return 1;
          case NsHostStatus::kUnresolvable: return 0;
        }
        return 0;
      };
      return rank(a) > rank(b) ? a : b;
    };

    for (geo::IPv4 addr : host.addresses) {
      ServerReply reply =
          resolver_->QueryServer(addr, result.domain, dns::RRType::kNS);
      switch (reply.outcome) {
        case QueryOutcome::kAuthAnswer: {
          best = NsHostStatus::kAuthoritative;
          result.child_any_authoritative = true;
          for (const dns::ResourceRecord& rr : reply.message->answers) {
            if (rr.type() == dns::RRType::kNS && rr.name == result.domain) {
              const dns::Name& target =
                  std::get<dns::NsRdata>(rr.rdata).nameserver;
              if (std::find(result.child_ns.begin(), result.child_ns.end(),
                            target) == result.child_ns.end()) {
                result.child_ns.push_back(target);
              }
            }
          }
          if (options_.collect_soa && !result.soa.has_value()) {
            ServerReply soa_reply =
                resolver_->QueryServer(addr, result.domain, dns::RRType::kSOA);
            if (soa_reply.outcome == QueryOutcome::kAuthAnswer) {
              for (const dns::ResourceRecord& rr : soa_reply.message->answers) {
                if (rr.type() == dns::RRType::kSOA) {
                  result.soa = std::get<dns::SoaRdata>(rr.rdata);
                  break;
                }
              }
            }
          }
          break;
        }
        case QueryOutcome::kAuthNegative:
        case QueryOutcome::kNonAuthAnswer:
        case QueryOutcome::kReferral:
          best = better(best, NsHostStatus::kNonAuthoritative);
          break;
        case QueryOutcome::kRefused:
          best = better(best, NsHostStatus::kRefused);
          break;
        case QueryOutcome::kTimeout:
        case QueryOutcome::kUnreachable:
        case QueryOutcome::kMalformed:
          best = better(best, NsHostStatus::kNoResponse);
          break;
      }
      if (best == NsHostStatus::kAuthoritative) break;
    }
    host.status = best;
  }
}

std::vector<MeasurementResult> ActiveMeasurer::MeasureAll(
    const std::vector<dns::Name>& domains) {
  std::vector<MeasurementResult> out;
  out.reserve(domains.size());
  for (const dns::Name& domain : domains) {
    out.push_back(Measure(domain));
  }
  return out;
}

}  // namespace govdns::core
