#include "core/measure.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "core/cut_cache.h"
#include "core/watchdog.h"

namespace govdns::core {

const char* QuarantineReasonName(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kNone: return "none";
    case QuarantineReason::kHang: return "hang";
    case QuarantineReason::kBlackhole: return "blackhole";
    case QuarantineReason::kBudgetExceeded: return "budget_exceeded";
    case QuarantineReason::kWatchdogCancelled: return "watchdog_cancelled";
    case QuarantineReason::kVantageLost: return "vantage_lost";
  }
  return "unknown";
}

std::vector<geo::IPv4> MeasurementResult::NsAddresses() const {
  std::vector<geo::IPv4> out;
  for (const NsHostResult& h : hosts) {
    out.insert(out.end(), h.addresses.begin(), h.addresses.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<dns::Name> MeasurementResult::AllNs() const {
  std::set<dns::Name> names(parent_ns.begin(), parent_ns.end());
  names.insert(child_ns.begin(), child_ns.end());
  return {names.begin(), names.end()};
}

ActiveMeasurer::ActiveMeasurer(IterativeResolver* resolver,
                               MeasurerOptions options)
    : resolver_(resolver), options_(options) {
  GOVDNS_CHECK(resolver != nullptr);
}

ActiveMeasurer::ActiveMeasurer(dns::QueryTransport* transport,
                               std::vector<geo::IPv4> root_hints,
                               ResolverOptions resolver_options,
                               MeasurerOptions options)
    : transport_(transport),
      roots_(std::move(root_hints)),
      resolver_options_(resolver_options),
      shared_cache_(std::make_unique<SharedCutCache>()),
      options_(options) {
  GOVDNS_CHECK(transport != nullptr);
  GOVDNS_CHECK(!roots_.empty());
  resolver_options_.shared_cache = shared_cache_.get();
  if (options_.obs != nullptr) {
    shared_cache_->set_trace_log(&options_.obs->cut_log());
  }
}

ActiveMeasurer::~ActiveMeasurer() = default;

// Well-known measurement metrics. Everything here is kStable: per-domain
// query_stats and logical_ms are pure functions of (world seed, domain), so
// their sums and histograms are worker-count independent by construction.
struct ActiveMeasurer::MetricIds {
  int domains;
  int degraded;
  int second_rounds;
  int queries;
  int retries;
  int timeouts;
  int backoff_ms;
  int breaker_skips;
  int negative_cache_hits;
  int budget_denied;
  int deadline_denied;
  int quarantined;
  int quarantined_hang;
  int quarantined_blackhole;
  int quarantined_budget;
  int quarantined_watchdog;
  int quarantined_vantage_lost;
  int h_queries;
  int h_logical;

  static MetricIds Declare(obs::MetricsRegistry& m) {
    MetricIds ids;
    ids.domains = m.DeclareCounter("measure.domains");
    ids.degraded = m.DeclareCounter("measure.degraded_domains");
    ids.second_rounds = m.DeclareCounter("measure.second_rounds");
    ids.queries = m.DeclareCounter("measure.queries");
    ids.retries = m.DeclareCounter("measure.retries");
    ids.timeouts = m.DeclareCounter("measure.timeouts");
    ids.backoff_ms = m.DeclareCounter("measure.backoff_ms");
    ids.breaker_skips = m.DeclareCounter("measure.breaker_skips");
    ids.negative_cache_hits = m.DeclareCounter("measure.negative_cache_hits");
    ids.budget_denied = m.DeclareCounter("measure.budget_denied");
    ids.deadline_denied = m.DeclareCounter("measure.deadline_denied");
    ids.quarantined = m.DeclareCounter("measure.quarantined_domains");
    ids.quarantined_hang = m.DeclareCounter("measure.quarantined_hang");
    ids.quarantined_blackhole =
        m.DeclareCounter("measure.quarantined_blackhole");
    ids.quarantined_budget =
        m.DeclareCounter("measure.quarantined_budget_exceeded");
    // Watchdog cancellations are wall-clock-driven, hence diagnostic.
    ids.quarantined_watchdog = m.DeclareCounter(
        "measure.quarantined_watchdog", obs::Determinism::kDiagnostic);
    // Only the supervisor's merge ever assigns kVantageLost; a live
    // measurer observing one means a journaled placeholder was replayed.
    ids.quarantined_vantage_lost =
        m.DeclareCounter("measure.quarantined_vantage_lost");
    ids.h_queries = m.DeclareHistogram("measure.queries_per_domain");
    ids.h_logical = m.DeclareHistogram("measure.logical_ms_per_domain");
    return ids;
  }

  void Observe(obs::MetricsShard& shard, const MeasurementResult& r) const {
    shard.Add(domains, 1);
    if (r.degraded) shard.Add(degraded, 1);
    if (r.rounds > 1) shard.Add(second_rounds, 1);
    shard.Add(queries, r.query_stats.queries);
    shard.Add(retries, r.query_stats.retries);
    shard.Add(timeouts, r.query_stats.timeouts);
    shard.Add(backoff_ms, r.query_stats.backoff_ms);
    shard.Add(breaker_skips, r.query_stats.breaker_skips);
    shard.Add(negative_cache_hits, r.query_stats.negative_cache_hits);
    shard.Add(budget_denied, r.query_stats.budget_denied);
    shard.Add(deadline_denied, r.query_stats.deadline_denied);
    switch (r.quarantine_reason) {
      case QuarantineReason::kNone:
        break;
      case QuarantineReason::kHang:
        shard.Add(quarantined, 1);
        shard.Add(quarantined_hang, 1);
        break;
      case QuarantineReason::kBlackhole:
        shard.Add(quarantined, 1);
        shard.Add(quarantined_blackhole, 1);
        break;
      case QuarantineReason::kBudgetExceeded:
        shard.Add(quarantined, 1);
        shard.Add(quarantined_budget, 1);
        break;
      case QuarantineReason::kWatchdogCancelled:
        shard.Add(quarantined, 1);
        shard.Add(quarantined_watchdog, 1);
        break;
      case QuarantineReason::kVantageLost:
        shard.Add(quarantined, 1);
        shard.Add(quarantined_vantage_lost, 1);
        break;
    }
    shard.Observe(h_queries, r.query_stats.queries);
    shard.Observe(h_logical, r.logical_ms);
  }
};

bool ActiveMeasurer::WantTrace(const dns::Name& domain) const {
  return options_.obs != nullptr &&
         options_.obs->traces().Sampled(domain.ToString());
}

void ActiveMeasurer::PublishCacheGauges() {
  if (options_.obs == nullptr || shared_cache_ == nullptr) return;
  obs::MetricsRegistry& m = options_.obs->metrics();
  const CutCacheStats cs = shared_cache_->stats();
  // All diagnostic: hit/miss splits and infra effort depend on which worker
  // warmed the cache first (DESIGN.md §6c).
  using obs::Determinism;
  m.SetGauge("cutcache.size", static_cast<int64_t>(shared_cache_->size()),
             Determinism::kDiagnostic);
  m.SetGauge("cutcache.hits", static_cast<int64_t>(cs.hits),
             Determinism::kDiagnostic);
  m.SetGauge("cutcache.misses", static_cast<int64_t>(cs.misses),
             Determinism::kDiagnostic);
  m.SetGauge("cutcache.negative_hits", static_cast<int64_t>(cs.negative_hits),
             Determinism::kDiagnostic);
  m.SetGauge("cutcache.publishes", static_cast<int64_t>(cs.publishes),
             Determinism::kDiagnostic);
  m.SetGauge("cutcache.negative_publishes",
             static_cast<int64_t>(cs.negative_publishes),
             Determinism::kDiagnostic);
  m.SetGauge("cutcache.infra_queries", static_cast<int64_t>(cs.infra.queries),
             Determinism::kDiagnostic);
}

MeasurementResult ActiveMeasurer::Measure(const dns::Name& domain) {
  std::optional<obs::DomainTrace> slot;
  std::optional<obs::DomainTrace>* slot_ptr = WantTrace(domain) ? &slot : nullptr;
  MeasurementResult result;
  if (resolver_ != nullptr) {
    result = MeasureWith(*resolver_, domain, slot_ptr);
  } else {
    IterativeResolver resolver(transport_, roots_, resolver_options_);
    result = MeasureWith(resolver, domain, slot_ptr);
    merged_counters_ += resolver.counters();
    merged_queries_sent_ += resolver.queries_sent();
  }
  if (slot.has_value()) options_.obs->traces().Fold(std::move(*slot));
  return result;
}

MeasurementResult ActiveMeasurer::MeasureWith(
    IterativeResolver& resolver, const dns::Name& domain,
    std::optional<obs::DomainTrace>* trace_slot) {
  MeasurementResult result;
  result.domain = domain;
  // In engine mode the scope makes everything below a pure function of
  // (world seed, domain): no-op otherwise.
  resolver.BeginDomainScope(domain);
  obs::DomainTrace* trace = nullptr;
  if (trace_slot != nullptr) {
    trace_slot->emplace(domain.ToString(),
                        options_.obs->traces().config().max_events_per_domain);
    trace = &trace_slot->value();
    resolver.set_trace(trace);
  }
  // Timed on the transport's logical clock; in engine mode the domain-scope
  // clock, so the timing is deterministic like everything else in scope.
  const uint64_t t0 = resolver.now_ms();
  // Charge everything this domain costs — including resolution detours —
  // against one hard budget, and attribute the per-outcome counters to it.
  const ResolverCounters before = resolver.counters();
  resolver.ClearCancelLatch();
  resolver.ArmQueryBudget(options_.max_queries_per_domain);
  // Logical deadline (§6g): the measurer option wins; otherwise the
  // resolver-level default. Armed against the domain-scope clock, so
  // whether it trips is a pure function of (world seed, domain).
  resolver.ArmDeadline(options_.max_logical_ms_per_domain != 0
                           ? options_.max_logical_ms_per_domain
                           : resolver.options().domain_deadline_ms);
  MeasureInternal(resolver, result, trace);
  result.degraded = resolver.BudgetExhausted() || resolver.DeadlineExceeded() ||
                    resolver.WatchdogCancelled();
  result.query_stats = resolver.counters() - before;
  result.logical_ms = resolver.now_ms() - t0;
  // Quarantine classification, from most to least definitive signal. The
  // hang/blackhole split is a client-side heuristic: a domain whose every
  // datagram timed out looks hung end to end, while a mix of delivered and
  // dark exchanges looks blackholed (delivered, then dropped).
  if (resolver.WatchdogCancelled()) {
    result.quarantine_reason = QuarantineReason::kWatchdogCancelled;
  } else if (resolver.DeadlineExceeded()) {
    result.quarantine_reason =
        (result.query_stats.queries > 0 &&
         result.query_stats.timeouts >= result.query_stats.queries)
            ? QuarantineReason::kHang
            : QuarantineReason::kBlackhole;
  } else if (resolver.BudgetExhausted()) {
    result.quarantine_reason = QuarantineReason::kBudgetExceeded;
  }
  if (trace != nullptr &&
      result.quarantine_reason != QuarantineReason::kNone) {
    trace->Record(obs::TraceEventKind::kQuarantined, resolver.now_ms(), 0,
                  static_cast<uint8_t>(result.quarantine_reason));
  }
  resolver.DisarmQueryBudget();
  resolver.DisarmDeadline();
  if (trace != nullptr) resolver.set_trace(nullptr);
  resolver.EndDomainScope();
  return result;
}

void ActiveMeasurer::MeasureInternal(IterativeResolver& resolver,
                                     MeasurementResult& result,
                                     obs::DomainTrace* trace) {
  const dns::Name& domain = result.domain;

  // --- Step 1: find and query the parent zone's servers. ------------------
  auto parent = resolver.FindEnclosingZoneServers(domain);
  if (!parent.ok()) return;  // parent unreachable / unresolvable
  result.parent_located = true;
  result.parent_zone = parent->zone;

  std::set<dns::Name> parent_set;
  std::vector<dns::ResourceRecord> parent_glue;
  for (geo::IPv4 server : parent->addresses) {
    ServerReply reply = resolver.QueryServer(server, domain, dns::RRType::kNS);
    switch (reply.outcome) {
      case QueryOutcome::kTimeout:
      case QueryOutcome::kUnreachable:
      case QueryOutcome::kMalformed:
        continue;
      default:
        result.parent_responded = true;
        break;
    }
    const dns::Message& m = *reply.message;
    if (reply.outcome == QueryOutcome::kReferral) {
      std::set<dns::Name> referral_targets;
      for (const dns::ResourceRecord& rr : m.authority) {
        if (rr.type() == dns::RRType::kNS && rr.name == domain) {
          const dns::Name& target = std::get<dns::NsRdata>(rr.rdata).nameserver;
          parent_set.insert(target);
          referral_targets.insert(target);
        }
      }
      // Bailiwick check: only additional-section A records whose owner is a
      // target of *this* referral's delegation count as glue. Anything else
      // in the additional section (stale data, a misconfigured or hostile
      // server padding unrelated addresses) must not become a nameserver
      // address we measure — or worse, credit to the domain's deployment.
      for (const dns::ResourceRecord& rr : m.additional) {
        if (rr.type() != dns::RRType::kA) continue;
        const uint32_t bits = std::get<dns::ARdata>(rr.rdata).address.bits();
        if (referral_targets.contains(rr.name)) {
          parent_glue.push_back(rr);
          if (trace != nullptr) {
            trace->Record(obs::TraceEventKind::kGlueAccepted,
                          resolver.now_ms(), bits);
          }
        } else if (trace != nullptr) {
          trace->Record(obs::TraceEventKind::kGlueRejected, resolver.now_ms(),
                        bits);
        }
      }
    } else if (reply.outcome == QueryOutcome::kAuthAnswer) {
      // Parent and child on the same servers: the "parent view" is already
      // the child's authoritative data (§IV-D cannot distinguish them).
      result.parent_answered_authoritatively = true;
      for (const dns::ResourceRecord& rr : m.answers) {
        if (rr.type() == dns::RRType::kNS && rr.name == domain) {
          parent_set.insert(std::get<dns::NsRdata>(rr.rdata).nameserver);
        }
      }
    }
    // kAuthNegative / kRefused / kNonAuthAnswer contribute no records.
  }
  result.parent_ns.assign(parent_set.begin(), parent_set.end());
  result.parent_has_records = !result.parent_ns.empty();
  if (!result.parent_has_records) return;

  // Stash referral glue into the resolver-independent host map later; keep
  // a local index for address resolution.
  std::map<dns::Name, std::vector<geo::IPv4>> glue_index;
  for (const dns::ResourceRecord& rr : parent_glue) {
    glue_index[rr.name].push_back(std::get<dns::ARdata>(rr.rdata).address);
  }

  // --- Steps 3-5: query the domain's own servers. --------------------------
  std::set<dns::Name> seen_hosts;
  for (const dns::Name& ns : result.parent_ns) {
    NsHostResult host;
    host.host = ns;
    host.in_parent_set = true;
    if (auto it = glue_index.find(ns); it != glue_index.end()) {
      host.addresses = it->second;
    }
    result.hosts.push_back(std::move(host));
    seen_hosts.insert(ns);
  }

  QueryChildServers(resolver, result);

  // Newly discovered child-side NS hostnames get queried too (step 4). An
  // authoritative answer from one of *those* hosts can itself name servers
  // unseen so far (child servers disagreeing about the NS set), so the
  // expansion iterates until no new hostname appears — bounded, so a
  // misconfigured ring of zones each pointing at fresh names cannot spin.
  auto add_new_child_hosts = [&]() {
    bool added = false;
    for (const dns::Name& ns : result.child_ns) {
      if (seen_hosts.insert(ns).second) {
        NsHostResult host;
        host.host = ns;
        host.in_child_set = true;
        result.hosts.push_back(std::move(host));
        added = true;
      }
    }
    return added;
  };
  auto mark_child_set = [&]() {
    for (NsHostResult& host : result.hosts) {
      if (std::find(result.child_ns.begin(), result.child_ns.end(),
                    host.host) != result.child_ns.end()) {
        host.in_child_set = true;
      }
    }
  };
  constexpr int kMaxExpansions = 3;
  for (int expansion = 0; expansion < kMaxExpansions; ++expansion) {
    if (!add_new_child_hosts()) break;
    QueryChildServers(resolver, result);
  }
  mark_child_set();

  // --- Round 2 (§III-B): parent had records but no child ever answered. ---
  if (options_.second_round && !result.child_any_authoritative) {
    result.rounds = 2;
    if (trace != nullptr) {
      trace->Record(obs::TraceEventKind::kRound2, resolver.now_ms());
    }
    QueryChildServers(resolver, result);
  }
}

void ActiveMeasurer::QueryChildServers(IterativeResolver& resolver,
                                       MeasurementResult& result) {
  for (NsHostResult& host : result.hosts) {
    if (host.status == NsHostStatus::kAuthoritative) continue;

    if (host.addresses.empty()) {
      auto addrs = resolver.ResolveAddresses(host.host);
      if (addrs.ok()) host.addresses = *addrs;
    }
    if (host.addresses.empty()) {
      host.status = NsHostStatus::kUnresolvable;
      continue;
    }

    NsHostStatus best = NsHostStatus::kNoResponse;
    auto better = [](NsHostStatus a, NsHostStatus b) {
      auto rank = [](NsHostStatus s) {
        switch (s) {
          case NsHostStatus::kAuthoritative: return 4;
          case NsHostStatus::kNonAuthoritative: return 3;
          case NsHostStatus::kRefused: return 2;
          case NsHostStatus::kNoResponse: return 1;
          case NsHostStatus::kUnresolvable: return 0;
        }
        return 0;
      };
      return rank(a) > rank(b) ? a : b;
    };

    for (geo::IPv4 addr : host.addresses) {
      ServerReply reply =
          resolver.QueryServer(addr, result.domain, dns::RRType::kNS);
      switch (reply.outcome) {
        case QueryOutcome::kAuthAnswer: {
          best = NsHostStatus::kAuthoritative;
          result.child_any_authoritative = true;
          for (const dns::ResourceRecord& rr : reply.message->answers) {
            if (rr.type() == dns::RRType::kNS && rr.name == result.domain) {
              const dns::Name& target =
                  std::get<dns::NsRdata>(rr.rdata).nameserver;
              if (std::find(result.child_ns.begin(), result.child_ns.end(),
                            target) == result.child_ns.end()) {
                result.child_ns.push_back(target);
              }
            }
          }
          if (options_.collect_soa && !result.soa.has_value()) {
            ServerReply soa_reply =
                resolver.QueryServer(addr, result.domain, dns::RRType::kSOA);
            if (soa_reply.outcome == QueryOutcome::kAuthAnswer) {
              for (const dns::ResourceRecord& rr : soa_reply.message->answers) {
                if (rr.type() == dns::RRType::kSOA) {
                  result.soa = std::get<dns::SoaRdata>(rr.rdata);
                  break;
                }
              }
            }
          }
          break;
        }
        case QueryOutcome::kAuthNegative:
        case QueryOutcome::kNonAuthAnswer:
        case QueryOutcome::kReferral:
          best = better(best, NsHostStatus::kNonAuthoritative);
          break;
        case QueryOutcome::kRefused:
          best = better(best, NsHostStatus::kRefused);
          break;
        case QueryOutcome::kTimeout:
        case QueryOutcome::kUnreachable:
        case QueryOutcome::kMalformed:
          best = better(best, NsHostStatus::kNoResponse);
          break;
      }
      if (best == NsHostStatus::kAuthoritative) break;
    }
    host.status = best;
  }
}

std::vector<MeasurementResult> ActiveMeasurer::MeasureAll(
    const std::vector<dns::Name>& domains) {
  obs::Observability* obs = options_.obs;
  if (resolver_ != nullptr) {
    std::vector<MeasurementResult> out;
    out.reserve(domains.size());
    for (const dns::Name& domain : domains) {
      out.push_back(Measure(domain));  // folds traces in input order
    }
    merged_counters_ = resolver_->counters();
    merged_queries_sent_ = resolver_->queries_sent();
    if (obs != nullptr) {
      const MetricIds ids = MetricIds::Declare(obs->metrics());
      std::unique_ptr<obs::MetricsShard> shard = obs->metrics().NewShard();
      for (const MeasurementResult& r : out) ids.Observe(*shard, r);
      obs->metrics().Absorb(*shard);
    }
    return out;
  }

  // Pool mode: shard over workers with an atomic dispenser. Every domain is
  // measured hermetically, so which worker picks it up cannot change its
  // result — writing into out[i] by input index makes the whole vector
  // byte-identical to a serial run.
  int workers = options_.async_lanes > 0 ? options_.async_lanes
                : options_.workers > 0
                    ? options_.workers
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  if (static_cast<size_t>(workers) > domains.size() && !domains.empty()) {
    workers = static_cast<int>(domains.size());
  }

  // Observability mirrors the worker ownership split: each worker updates a
  // private metrics shard (commutative sums, absorbed post-join) and writes
  // each sampled domain's trace into its input-index slot, folded into the
  // ring post-join in input order — both therefore worker-count independent.
  std::optional<MetricIds> ids;
  if (obs != nullptr) ids = MetricIds::Declare(obs->metrics());
  std::vector<std::optional<obs::DomainTrace>> trace_slots(
      obs != nullptr ? domains.size() : 0);
  std::vector<std::unique_ptr<obs::MetricsShard>> worker_shards(workers);

  std::vector<MeasurementResult> out(domains.size());
  std::atomic<size_t> next{0};
  std::vector<ResolverCounters> worker_counters(workers);
  std::vector<uint64_t> worker_queries(workers, 0);

  // Wall-clock liveness net (§6g). In pure simulation exchanges always
  // return promptly, so the watchdog never fires and attaching one cannot
  // change the deterministic byte stream; against a genuinely blocking
  // transport it cancels the stalled worker's in-flight domain.
  std::unique_ptr<PhaseWatchdog> watchdog;
  if (options_.watchdog_stall_ms > 0) {
    PhaseWatchdog::Options wd_options;
    wd_options.stall_timeout_ms = options_.watchdog_stall_ms;
    wd_options.poll_interval_ms = options_.watchdog_poll_ms;
    watchdog = std::make_unique<PhaseWatchdog>(workers, wd_options);
  }
  std::vector<std::vector<size_t>> worker_cancelled(workers);

  auto run = [&](int w) {
    IterativeResolver resolver(transport_, roots_, resolver_options_);
    if (watchdog != nullptr) {
      resolver.set_cancel_flag(watchdog->cancel_flag(w));
    }
    std::unique_ptr<obs::MetricsShard> shard =
        ids.has_value() ? obs->metrics().NewShard() : nullptr;
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= domains.size()) break;
      if (watchdog != nullptr) watchdog->Heartbeat(w);
      std::optional<obs::DomainTrace>* slot =
          WantTrace(domains[i]) ? &trace_slots[i] : nullptr;
      out[i] = MeasureWith(resolver, domains[i], slot);
      if (watchdog != nullptr &&
          out[i].quarantine_reason == QuarantineReason::kWatchdogCancelled) {
        // Abandoned mid-flight: remember for the post-join requeue pass and
        // re-arm this worker. Metrics wait until the final verdict.
        worker_cancelled[w].push_back(i);
        watchdog->AckCancel(w);
        continue;
      }
      if (shard != nullptr) ids->Observe(*shard, out[i]);
    }
    worker_counters[w] = resolver.counters();
    worker_queries[w] = resolver.queries_sent();
    worker_shards[w] = std::move(shard);
  };
  if (workers == 1) {
    run(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int w = 0; w < workers; ++w) pool.emplace_back(run, w);
    for (std::thread& t : pool) t.join();
  }

  merged_counters_ = ResolverCounters{};
  merged_queries_sent_ = 0;
  for (int w = 0; w < workers; ++w) {
    merged_counters_ += worker_counters[w];
    merged_queries_sent_ += worker_queries[w];
  }

  if (watchdog != nullptr) {
    // Requeue every cancelled domain exactly once, serially: the stall that
    // cancelled it may have been another worker's contention, so one retry
    // under a fresh heartbeat is cheap insurance. A domain cancelled twice
    // stays quarantined as kWatchdogCancelled.
    std::vector<size_t> cancelled;
    for (const auto& per_worker : worker_cancelled) {
      cancelled.insert(cancelled.end(), per_worker.begin(), per_worker.end());
    }
    std::sort(cancelled.begin(), cancelled.end());
    if (!cancelled.empty()) {
      IterativeResolver requeue_resolver(transport_, roots_,
                                         resolver_options_);
      requeue_resolver.set_cancel_flag(watchdog->cancel_flag(0));
      std::unique_ptr<obs::MetricsShard> requeue_shard =
          ids.has_value() ? obs->metrics().NewShard() : nullptr;
      for (size_t i : cancelled) {
        watchdog->AckCancel(0);
        std::optional<obs::DomainTrace>* slot =
            WantTrace(domains[i]) ? &trace_slots[i] : nullptr;
        out[i] = MeasureWith(requeue_resolver, domains[i], slot);
        if (requeue_shard != nullptr) ids->Observe(*requeue_shard, out[i]);
      }
      merged_counters_ += requeue_resolver.counters();
      merged_queries_sent_ += requeue_resolver.queries_sent();
      if (requeue_shard != nullptr) obs->metrics().Absorb(*requeue_shard);
    }
    watchdog->Stop();
    if (obs != nullptr) {
      obs->metrics().SetGauge(
          "measure.watchdog_cancels",
          static_cast<int64_t>(watchdog->total_cancels()),
          obs::Determinism::kDiagnostic);
    }
  }

  if (obs != nullptr) {
    for (auto& shard : worker_shards) {
      if (shard != nullptr) obs->metrics().Absorb(*shard);
    }
    for (std::optional<obs::DomainTrace>& slot : trace_slots) {
      if (slot.has_value()) obs->traces().Fold(std::move(*slot));
    }
    PublishCacheGauges();
  }
  return out;
}

}  // namespace govdns::core
