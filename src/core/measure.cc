#include "core/measure.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "core/cut_cache.h"

namespace govdns::core {

std::vector<geo::IPv4> MeasurementResult::NsAddresses() const {
  std::vector<geo::IPv4> out;
  for (const NsHostResult& h : hosts) {
    out.insert(out.end(), h.addresses.begin(), h.addresses.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<dns::Name> MeasurementResult::AllNs() const {
  std::set<dns::Name> names(parent_ns.begin(), parent_ns.end());
  names.insert(child_ns.begin(), child_ns.end());
  return {names.begin(), names.end()};
}

ActiveMeasurer::ActiveMeasurer(IterativeResolver* resolver,
                               MeasurerOptions options)
    : resolver_(resolver), options_(options) {
  GOVDNS_CHECK(resolver != nullptr);
}

ActiveMeasurer::ActiveMeasurer(dns::QueryTransport* transport,
                               std::vector<geo::IPv4> root_hints,
                               ResolverOptions resolver_options,
                               MeasurerOptions options)
    : transport_(transport),
      roots_(std::move(root_hints)),
      resolver_options_(resolver_options),
      shared_cache_(std::make_unique<SharedCutCache>()),
      options_(options) {
  GOVDNS_CHECK(transport != nullptr);
  GOVDNS_CHECK(!roots_.empty());
  resolver_options_.shared_cache = shared_cache_.get();
}

ActiveMeasurer::~ActiveMeasurer() = default;

MeasurementResult ActiveMeasurer::Measure(const dns::Name& domain) {
  if (resolver_ != nullptr) return MeasureWith(*resolver_, domain);
  IterativeResolver resolver(transport_, roots_, resolver_options_);
  MeasurementResult result = MeasureWith(resolver, domain);
  merged_counters_ += resolver.counters();
  merged_queries_sent_ += resolver.queries_sent();
  return result;
}

MeasurementResult ActiveMeasurer::MeasureWith(IterativeResolver& resolver,
                                              const dns::Name& domain) {
  MeasurementResult result;
  result.domain = domain;
  // In engine mode the scope makes everything below a pure function of
  // (world seed, domain): no-op otherwise.
  resolver.BeginDomainScope(domain);
  // Charge everything this domain costs — including resolution detours —
  // against one hard budget, and attribute the per-outcome counters to it.
  const ResolverCounters before = resolver.counters();
  resolver.ArmQueryBudget(options_.max_queries_per_domain);
  MeasureInternal(resolver, result);
  result.degraded = resolver.BudgetExhausted();
  resolver.DisarmQueryBudget();
  result.query_stats = resolver.counters() - before;
  resolver.EndDomainScope();
  return result;
}

void ActiveMeasurer::MeasureInternal(IterativeResolver& resolver,
                                     MeasurementResult& result) {
  const dns::Name& domain = result.domain;

  // --- Step 1: find and query the parent zone's servers. ------------------
  auto parent = resolver.FindEnclosingZoneServers(domain);
  if (!parent.ok()) return;  // parent unreachable / unresolvable
  result.parent_located = true;
  result.parent_zone = parent->zone;

  std::set<dns::Name> parent_set;
  std::vector<dns::ResourceRecord> parent_glue;
  for (geo::IPv4 server : parent->addresses) {
    ServerReply reply = resolver.QueryServer(server, domain, dns::RRType::kNS);
    switch (reply.outcome) {
      case QueryOutcome::kTimeout:
      case QueryOutcome::kUnreachable:
      case QueryOutcome::kMalformed:
        continue;
      default:
        result.parent_responded = true;
        break;
    }
    const dns::Message& m = *reply.message;
    if (reply.outcome == QueryOutcome::kReferral) {
      std::set<dns::Name> referral_targets;
      for (const dns::ResourceRecord& rr : m.authority) {
        if (rr.type() == dns::RRType::kNS && rr.name == domain) {
          const dns::Name& target = std::get<dns::NsRdata>(rr.rdata).nameserver;
          parent_set.insert(target);
          referral_targets.insert(target);
        }
      }
      // Bailiwick check: only additional-section A records whose owner is a
      // target of *this* referral's delegation count as glue. Anything else
      // in the additional section (stale data, a misconfigured or hostile
      // server padding unrelated addresses) must not become a nameserver
      // address we measure — or worse, credit to the domain's deployment.
      for (const dns::ResourceRecord& rr : m.additional) {
        if (rr.type() == dns::RRType::kA && referral_targets.contains(rr.name)) {
          parent_glue.push_back(rr);
        }
      }
    } else if (reply.outcome == QueryOutcome::kAuthAnswer) {
      // Parent and child on the same servers: the "parent view" is already
      // the child's authoritative data (§IV-D cannot distinguish them).
      result.parent_answered_authoritatively = true;
      for (const dns::ResourceRecord& rr : m.answers) {
        if (rr.type() == dns::RRType::kNS && rr.name == domain) {
          parent_set.insert(std::get<dns::NsRdata>(rr.rdata).nameserver);
        }
      }
    }
    // kAuthNegative / kRefused / kNonAuthAnswer contribute no records.
  }
  result.parent_ns.assign(parent_set.begin(), parent_set.end());
  result.parent_has_records = !result.parent_ns.empty();
  if (!result.parent_has_records) return;

  // Stash referral glue into the resolver-independent host map later; keep
  // a local index for address resolution.
  std::map<dns::Name, std::vector<geo::IPv4>> glue_index;
  for (const dns::ResourceRecord& rr : parent_glue) {
    glue_index[rr.name].push_back(std::get<dns::ARdata>(rr.rdata).address);
  }

  // --- Steps 3-5: query the domain's own servers. --------------------------
  std::set<dns::Name> seen_hosts;
  for (const dns::Name& ns : result.parent_ns) {
    NsHostResult host;
    host.host = ns;
    host.in_parent_set = true;
    if (auto it = glue_index.find(ns); it != glue_index.end()) {
      host.addresses = it->second;
    }
    result.hosts.push_back(std::move(host));
    seen_hosts.insert(ns);
  }

  QueryChildServers(resolver, result);

  // Newly discovered child-side NS hostnames get queried too (step 4). An
  // authoritative answer from one of *those* hosts can itself name servers
  // unseen so far (child servers disagreeing about the NS set), so the
  // expansion iterates until no new hostname appears — bounded, so a
  // misconfigured ring of zones each pointing at fresh names cannot spin.
  auto add_new_child_hosts = [&]() {
    bool added = false;
    for (const dns::Name& ns : result.child_ns) {
      if (seen_hosts.insert(ns).second) {
        NsHostResult host;
        host.host = ns;
        host.in_child_set = true;
        result.hosts.push_back(std::move(host));
        added = true;
      }
    }
    return added;
  };
  auto mark_child_set = [&]() {
    for (NsHostResult& host : result.hosts) {
      if (std::find(result.child_ns.begin(), result.child_ns.end(),
                    host.host) != result.child_ns.end()) {
        host.in_child_set = true;
      }
    }
  };
  constexpr int kMaxExpansions = 3;
  for (int expansion = 0; expansion < kMaxExpansions; ++expansion) {
    if (!add_new_child_hosts()) break;
    QueryChildServers(resolver, result);
  }
  mark_child_set();

  // --- Round 2 (§III-B): parent had records but no child ever answered. ---
  if (options_.second_round && !result.child_any_authoritative) {
    result.rounds = 2;
    QueryChildServers(resolver, result);
  }
}

void ActiveMeasurer::QueryChildServers(IterativeResolver& resolver,
                                       MeasurementResult& result) {
  for (NsHostResult& host : result.hosts) {
    if (host.status == NsHostStatus::kAuthoritative) continue;

    if (host.addresses.empty()) {
      auto addrs = resolver.ResolveAddresses(host.host);
      if (addrs.ok()) host.addresses = *addrs;
    }
    if (host.addresses.empty()) {
      host.status = NsHostStatus::kUnresolvable;
      continue;
    }

    NsHostStatus best = NsHostStatus::kNoResponse;
    auto better = [](NsHostStatus a, NsHostStatus b) {
      auto rank = [](NsHostStatus s) {
        switch (s) {
          case NsHostStatus::kAuthoritative: return 4;
          case NsHostStatus::kNonAuthoritative: return 3;
          case NsHostStatus::kRefused: return 2;
          case NsHostStatus::kNoResponse: return 1;
          case NsHostStatus::kUnresolvable: return 0;
        }
        return 0;
      };
      return rank(a) > rank(b) ? a : b;
    };

    for (geo::IPv4 addr : host.addresses) {
      ServerReply reply =
          resolver.QueryServer(addr, result.domain, dns::RRType::kNS);
      switch (reply.outcome) {
        case QueryOutcome::kAuthAnswer: {
          best = NsHostStatus::kAuthoritative;
          result.child_any_authoritative = true;
          for (const dns::ResourceRecord& rr : reply.message->answers) {
            if (rr.type() == dns::RRType::kNS && rr.name == result.domain) {
              const dns::Name& target =
                  std::get<dns::NsRdata>(rr.rdata).nameserver;
              if (std::find(result.child_ns.begin(), result.child_ns.end(),
                            target) == result.child_ns.end()) {
                result.child_ns.push_back(target);
              }
            }
          }
          if (options_.collect_soa && !result.soa.has_value()) {
            ServerReply soa_reply =
                resolver.QueryServer(addr, result.domain, dns::RRType::kSOA);
            if (soa_reply.outcome == QueryOutcome::kAuthAnswer) {
              for (const dns::ResourceRecord& rr : soa_reply.message->answers) {
                if (rr.type() == dns::RRType::kSOA) {
                  result.soa = std::get<dns::SoaRdata>(rr.rdata);
                  break;
                }
              }
            }
          }
          break;
        }
        case QueryOutcome::kAuthNegative:
        case QueryOutcome::kNonAuthAnswer:
        case QueryOutcome::kReferral:
          best = better(best, NsHostStatus::kNonAuthoritative);
          break;
        case QueryOutcome::kRefused:
          best = better(best, NsHostStatus::kRefused);
          break;
        case QueryOutcome::kTimeout:
        case QueryOutcome::kUnreachable:
        case QueryOutcome::kMalformed:
          best = better(best, NsHostStatus::kNoResponse);
          break;
      }
      if (best == NsHostStatus::kAuthoritative) break;
    }
    host.status = best;
  }
}

std::vector<MeasurementResult> ActiveMeasurer::MeasureAll(
    const std::vector<dns::Name>& domains) {
  if (resolver_ != nullptr) {
    std::vector<MeasurementResult> out;
    out.reserve(domains.size());
    for (const dns::Name& domain : domains) {
      out.push_back(Measure(domain));
    }
    merged_counters_ = resolver_->counters();
    merged_queries_sent_ = resolver_->queries_sent();
    return out;
  }

  // Pool mode: shard over workers with an atomic dispenser. Every domain is
  // measured hermetically, so which worker picks it up cannot change its
  // result — writing into out[i] by input index makes the whole vector
  // byte-identical to a serial run.
  int workers = options_.workers > 0
                    ? options_.workers
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 1) workers = 1;
  if (static_cast<size_t>(workers) > domains.size() && !domains.empty()) {
    workers = static_cast<int>(domains.size());
  }

  std::vector<MeasurementResult> out(domains.size());
  std::atomic<size_t> next{0};
  std::vector<ResolverCounters> worker_counters(workers);
  std::vector<uint64_t> worker_queries(workers, 0);
  auto run = [&](int w) {
    IterativeResolver resolver(transport_, roots_, resolver_options_);
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= domains.size()) break;
      out[i] = MeasureWith(resolver, domains[i]);
    }
    worker_counters[w] = resolver.counters();
    worker_queries[w] = resolver.queries_sent();
  };
  if (workers == 1) {
    run(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int w = 0; w < workers; ++w) pool.emplace_back(run, w);
    for (std::thread& t : pool) t.join();
  }

  merged_counters_ = ResolverCounters{};
  merged_queries_sent_ = 0;
  for (int w = 0; w < workers; ++w) {
    merged_counters_ += worker_counters[w];
    merged_queries_sent_ += worker_queries[w];
  }
  return out;
}

}  // namespace govdns::core
