// Machine-readable export of study results.
//
// ExportReportJson turns a StudyReport into one JSON document carrying
// every figure/table series the paper reports; downstream tooling (plots,
// dashboards, regression tracking) consumes this instead of scraping the
// text tables.
#pragma once

#include <string>

#include "core/report.h"

namespace govdns::core {

// The complete report as a single JSON object. Stable key layout:
//   selection{}, pdns_per_year[], funnel{}, replication{}, diversity[],
//   d1ns_churn[], private_share[], providers{first_year,last_year}[],
//   delegations{by_country[]}, hijack{}, consistency{}.
std::string ExportReportJson(const StudyReport& report);

// One analysis table as CSV (matching the bench tables): selector is one of
// "pdns_per_year", "d1ns_churn", "private_share", "diversity",
// "delegations_by_country", "hijack_by_country", "consistency_by_country".
// Unknown selectors return an empty string.
std::string ExportCsv(const StudyReport& report, const std::string& table);

}  // namespace govdns::core
