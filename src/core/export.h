// Machine-readable export of study results.
//
// ExportReportJson turns a StudyReport into one JSON document carrying
// every figure/table series the paper reports; downstream tooling (plots,
// dashboards, regression tracking) consumes this instead of scraping the
// text tables. ExportMetricsJson/Csv and ExportTraceJson serialize the
// observability layer (DESIGN.md §6d): metrics snapshots, sampled query
// traces, and the shared-cut publish log.
#pragma once

#include <string>

#include "core/report.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace govdns::core {

// The complete report as a single JSON object. Stable key layout:
//   selection{}, pdns_per_year[], funnel{}, replication{}, diversity[],
//   d1ns_churn[], private_share[], providers{first_year,last_year}[],
//   delegations{by_country[]}, hijack{}, consistency{}, resilience{},
//   profile[].
// profile[] rows carry {name, items, logical_ms} only — wall time is
// diagnostic and never enters this document, keeping it byte-stable for a
// given seed.
std::string ExportReportJson(const StudyReport& report);

// A metrics snapshot as {counters[], gauges[], histograms[]}, each row
// tagged with its determinism class. With include_diagnostic = false the
// document contains only kStable series and is byte-identical across
// worker counts for the same seed.
std::string ExportMetricsJson(const obs::MetricsSnapshot& snapshot);

// The same snapshot flattened to CSV rows:
//   kind,name,determinism,count,sum,min,max
// (counters/gauges use count=value and leave sum/min/max empty).
std::string ExportMetricsCsv(const obs::MetricsSnapshot& snapshot);

// Sampled domain traces plus the shared-cut publish log as one JSON
// document: {config{}, folded_domains, domains[], cut_log[]}. Events carry
// logical timestamps only, so the document is byte-identical across worker
// counts for the same seed.
std::string ExportTraceJson(const obs::TraceRing& traces,
                            const obs::CutTraceLog& cut_log);

// One analysis table as CSV (matching the bench tables): selector is one of
// "pdns_per_year", "d1ns_churn", "private_share", "diversity",
// "delegations_by_country", "hijack_by_country", "consistency_by_country".
// Unknown selectors return an empty string.
std::string ExportCsv(const StudyReport& report, const std::string& table);

}  // namespace govdns::core
