// PdnsSnapshot persistence: the on-disk checkpoint IS the in-memory format.
//
// A frozen PdnsSnapshot serializes into a GVSN container (ckpt/
// snapshot_file.h) as six flat sections — canonical name keys, name-key
// fenceposts, per-owner entry fenceposts, packed fixed-width entry records,
// and the concatenated rdata blob — all indexed by 64-bit file offsets.
// Loading therefore has two paths:
//
//   * ReadPdnsSnapshotFileOwning ("parse-load"): decodes every section back
//     into an owning PdnsSnapshot. O(entries); the compatibility path.
//   * MappedPdnsSnapshot ("mapped"): mmaps the file and serves lookups
//     straight from the mapping with zero parsing — open cost is O(1) in
//     world size, names binary-search as raw canonical keys, and entries
//     come out as non-owning PdnsEntryView records. This is what makes
//     resume/restart cost independent of how large the swept world is.
//
// Both paths answer WildcardNameRange/VisitWildcard identically to the
// owning snapshot they were written from (pinned by SnapshotFileTest's
// randomized oracle).
#pragma once

#include <cstdint>
#include <iterator>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ckpt/snapshot_file.h"
#include "dns/name.h"
#include "pdns/db.h"
#include "util/status.h"

namespace govdns::pdns {

// Bumped when the section shapes below change; openers reject other
// versions before touching any payload.
inline constexpr uint32_t kPdnsSnapshotFormatVersion = 1;

// Section ids inside the GVSN container.
inline constexpr uint32_t kSecPdnsMeta = 1;         // counts (varint codec)
inline constexpr uint32_t kSecPdnsNameKeys = 2;     // concatenated keys
inline constexpr uint32_t kSecPdnsNameOffsets = 3;  // (names+1) x u64
inline constexpr uint32_t kSecPdnsEntryOffsets = 4; // (names+1) x u64
inline constexpr uint32_t kSecPdnsEntries = 5;      // entries x RawPdnsEntry
inline constexpr uint32_t kSecPdnsRdata = 6;        // concatenated rdata

// One entry as it lies in the file: fixed width, natural alignment, rdata
// referenced by offset into the rdata section. 32 bytes so four entries
// share a cache line during subtree scans.
struct RawPdnsEntry {
  uint64_t rdata_off = 0;
  uint32_t rdata_len = 0;
  uint32_t type = 0;  // dns::RRType
  int32_t seen_first = 0;
  int32_t seen_last = 0;
  uint64_t count = 0;
};
static_assert(sizeof(RawPdnsEntry) == 32, "file format is 32-byte entries");

// Serializes `snap` and publishes it atomically (tmp + fsync + rename) at
// `path` inside directory `dir`. `fingerprint` is the world/config identity
// readers must present.
util::Status WritePdnsSnapshotFile(const PdnsSnapshot& snap,
                                   uint64_t fingerprint,
                                   const std::string& dir,
                                   const std::string& path);

// Parse-load: fully decodes the file into an owning snapshot, validating
// every section payload CRC (this path is O(entries) anyway).
util::StatusOr<PdnsSnapshot> ReadPdnsSnapshotFileOwning(
    const std::string& path, uint64_t fingerprint);

// Zero-copy mapped snapshot. Mirrors the owning PdnsSnapshot's lookup API
// (same method names and semantics) so code generic over either — the miner
// — compiles against both.
class MappedPdnsSnapshot {
 public:
  // O(1) open: container CRCs + section bounds only. Pass
  // SnapshotValidation::kFull to also verify every payload CRC (tests).
  static util::StatusOr<MappedPdnsSnapshot> Open(
      const std::string& path, uint64_t fingerprint,
      ckpt::SnapshotValidation validation = ckpt::SnapshotValidation::kFast);
  // As Open but via the no-mmap read fallback (benchmark baseline).
  static util::StatusOr<MappedPdnsSnapshot> OpenReadOnly(
      const std::string& path, uint64_t fingerprint,
      ckpt::SnapshotValidation validation = ckpt::SnapshotValidation::kFast);

  size_t name_count() const { return name_count_; }
  size_t entry_count() const { return entry_count_; }
  bool mapped() const { return view_.mapped(); }

  // Raw canonical key of name i (dns::Name::CanonicalKey bytes).
  std::string_view name_key(size_t i) const {
    return keys_.substr(name_offsets_[i],
                        name_offsets_[i + 1] - name_offsets_[i]);
  }
  // Materializes name i; only output paths should need this.
  dns::Name name(size_t i) const;

  // Iterable, indexable range of PdnsEntryView over one owner's entries.
  class EntryRange {
   public:
    class Iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = PdnsEntryView;
      using difference_type = std::ptrdiff_t;
      using pointer = void;
      using reference = PdnsEntryView;

      Iterator(const RawPdnsEntry* raw, std::string_view rdata)
          : raw_(raw), rdata_(rdata) {}
      PdnsEntryView operator*() const;
      Iterator& operator++() {
        ++raw_;
        return *this;
      }
      friend bool operator==(const Iterator& a, const Iterator& b) {
        return a.raw_ == b.raw_;
      }

     private:
      const RawPdnsEntry* raw_;
      std::string_view rdata_;
    };

    EntryRange(const RawPdnsEntry* begin, const RawPdnsEntry* end,
               std::string_view rdata)
        : begin_(begin), end_(end), rdata_(rdata) {}
    Iterator begin() const { return {begin_, rdata_}; }
    Iterator end() const { return {end_, rdata_}; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
    bool empty() const { return begin_ == end_; }

   private:
    const RawPdnsEntry* begin_;
    const RawPdnsEntry* end_;
    std::string_view rdata_;
  };

  // Entries owned by name(i); views point into the mapping.
  EntryRange entries(size_t i) const {
    return {raw_entries_ + entry_offsets_[i], raw_entries_ + entry_offsets_[i + 1],
            rdata_};
  }

  // Flat view of every entry in the name-index range [lo, hi) — the same
  // contract as PdnsSnapshot::EntriesInNameRange, for code generic over the
  // two substrates (the miner's intern pre-pass).
  EntryRange EntriesInNameRange(size_t lo, size_t hi) const {
    return {raw_entries_ + entry_offsets_[lo], raw_entries_ + entry_offsets_[hi],
            rdata_};
  }

  // Same contract as PdnsSnapshot::WildcardNameRange, computed by binary
  // search over the raw keys (no Name is materialized).
  std::pair<size_t, size_t> WildcardNameRange(const dns::Name& suffix) const;

  // Same contract as PdnsSnapshot::VisitWildcard, over views.
  template <typename Visitor>
  void VisitWildcard(const dns::Name& suffix, const Query& query,
                     Visitor&& visit) const {
    const auto [lo, hi] = WildcardNameRange(suffix);
    for (size_t n = lo; n < hi; ++n) {
      for (const PdnsEntryView entry : entries(n)) {
        if (EntryMatches(entry, query)) visit(entry);
      }
    }
  }

  // Materializing wrapper, result-identical to the owning snapshot's
  // WildcardSearch on the same world (oracle-test surface).
  std::vector<PdnsEntry> WildcardSearch(const dns::Name& suffix,
                                        const Query& query = Query()) const;

 private:
  // The owning loader decodes through a validated mapped view first.
  friend util::StatusOr<PdnsSnapshot> ReadPdnsSnapshotFileOwning(
      const std::string& path, uint64_t fingerprint);

  static util::StatusOr<MappedPdnsSnapshot> FromView(
      ckpt::SnapshotFileView view, const std::string& path);

  ckpt::SnapshotFileView view_;
  size_t name_count_ = 0;
  size_t entry_count_ = 0;
  std::string_view keys_;
  const uint64_t* name_offsets_ = nullptr;   // name_count_ + 1
  const uint64_t* entry_offsets_ = nullptr;  // name_count_ + 1
  const RawPdnsEntry* raw_entries_ = nullptr;
  std::string_view rdata_;
};

}  // namespace govdns::pdns
