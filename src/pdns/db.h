// Passive-DNS database.
//
// Models the interface the paper uses from Farsight's DNSDB: record sets
// keyed by (rrname, rrtype, rdata) carrying first-seen/last-seen timestamps
// and an observation count, with left-hand wildcard search
// ("*.gov.au" -> every record whose owner ends in gov.au) and time-window
// filtering. The world generator populates it by replaying ten years of
// synthetic zone history through Observe().
//
// Two read paths exist:
//   * the mutable, map-backed PdnsDatabase, used while the history is being
//     ingested; and
//   * a frozen PdnsSnapshot (from Freeze()), which lowers the node-based map
//     into one flat, canonically sorted entry array with a per-owner offset
//     index. Wildcard search on a snapshot is a binary-searched contiguous
//     range returning non-owning spans — no per-query copies — which is what
//     the sharded miner iterates at paper scale.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "util/civil_time.h"
#include "util/status.h"

namespace govdns::pdns {

struct PdnsEntry {
  dns::Name rrname;
  dns::RRType type = dns::RRType::kNS;
  std::string rdata;  // presentation form, e.g. "ns1.example.com"
  util::DayInterval seen;
  uint64_t count = 0;

  friend bool operator==(const PdnsEntry&, const PdnsEntry&) = default;
};

// Non-owning view of one entry: what a memory-mapped snapshot hands out
// (snapshot_io.h), where the rdata bytes live in the mapping. The owner name
// is implicit — callers iterate entries grouped by owner index.
struct PdnsEntryView {
  dns::RRType type = dns::RRType::kNS;
  std::string_view rdata;
  util::DayInterval seen;
  uint64_t count = 0;

  friend bool operator==(const PdnsEntryView&, const PdnsEntryView&) = default;
};

// Filter for database searches.
struct Query {
  std::optional<dns::RRType> type;          // filter by type
  std::optional<util::DayInterval> window;  // keep entries overlapping it
  // Minimum first-seen-to-last-seen *gap* in days: keep iff
  //
  //     seen.last − seen.first >= min_seen_gap_days
  //
  // This is the same gap semantics as the §III-C stability filter in
  // core/mining.h (stable iff the gap reaches `stability_days`), so the two
  // filters cannot drift apart. It is deliberately NOT the inclusive
  // calendar length `DayInterval::LengthDays()` (= gap + 1); an earlier
  // revision compared LengthDays() here while mining used the gap, letting
  // one-day-longer records through on this path only. 0 keeps everything.
  int min_seen_gap_days = 0;
};

// True when `entry` passes `query`. One predicate shared by the map-backed
// database, the frozen snapshot, and the mapped snapshot, so the paths
// cannot disagree.
bool EntryMatches(const PdnsEntry& entry, const Query& query);
bool EntryMatches(const PdnsEntryView& entry, const Query& query);

// Immutable flat-index view of a database at Freeze() time. Owner names are
// held in one canonically sorted array (canonical order clusters a suffix's
// subtree into a contiguous run) and all entries live in one flat array
// grouped by owner, so a wildcard search is two binary searches plus a
// contiguous scan, and callers can iterate entries as non-owning spans.
// Later Observe() calls on the source database do not affect a snapshot.
class PdnsSnapshot {
 public:
  PdnsSnapshot() = default;

  // Rebuilds a snapshot from flat parts already in canonical order — the
  // snapshot_io parse-load path. `offsets` must be names.size() + 1
  // monotonic fenceposts from 0 to entries.size(); violations abort (the
  // file decoder validates before calling).
  static PdnsSnapshot FromSortedParts(std::vector<dns::Name> names,
                                      std::vector<uint64_t> offsets,
                                      std::vector<PdnsEntry> entries);

  size_t entry_count() const { return entries_.size(); }
  size_t name_count() const { return names_.size(); }

  const dns::Name& name(size_t i) const { return names_[i]; }
  // Entries owned by name(i), in the source database's per-owner order.
  std::span<const PdnsEntry> entries(size_t i) const {
    return {entries_.data() + offsets_[i],
            static_cast<size_t>(offsets_[i + 1] - offsets_[i])};
  }

  // Every entry of every owner in the name-index range [lo, hi), as one flat
  // span — the per-owner grouping collapsed. This is the substrate of the
  // miner's intern pre-pass (DESIGN.md §6j), which only needs each entry's
  // (type, rdata, seen) and not which owner it belongs to; iterating one
  // span beats name_count() small spans.
  std::span<const PdnsEntry> EntriesInNameRange(size_t lo, size_t hi) const {
    return {entries_.data() + offsets_[lo],
            static_cast<size_t>(offsets_[hi] - offsets_[lo])};
  }

  // Owner-index half-open range [lo, hi) of names equal to or under
  // `suffix`. Valid because canonical order keeps the subtree contiguous:
  // any name >= suffix that is not in the subtree differs from suffix in
  // one of its rightmost LabelCount(suffix) labels and therefore sorts
  // after every subtree member.
  std::pair<size_t, size_t> WildcardNameRange(const dns::Name& suffix) const;

  // All entries of the subtree under `suffix`, unfiltered, zero-copy.
  std::span<const PdnsEntry> WildcardSpan(const dns::Name& suffix) const;

  // Allocation-free wildcard search: invokes `visit(entry)` for every
  // subtree entry matching `query`, in canonical order.
  template <typename Visitor>
  void VisitWildcard(const dns::Name& suffix, const Query& query,
                     Visitor&& visit) const {
    for (const PdnsEntry& entry : WildcardSpan(suffix)) {
      if (EntryMatches(entry, query)) visit(entry);
    }
  }

  // Thin copying wrapper over VisitWildcard for existing callers; returns
  // exactly what the map-backed PdnsDatabase::WildcardSearch returns.
  std::vector<PdnsEntry> WildcardSearch(const dns::Name& suffix,
                                        const Query& query = Query()) const;

 private:
  friend class PdnsDatabase;

  // 64-bit fenceposts, deliberately: a uint32_t index here silently wraps
  // once a swept-up world crosses 4Gi entries — the same truncation class
  // the ckpt serializer fixed (serial.h).
  std::vector<dns::Name> names_;     // canonical order
  std::vector<uint64_t> offsets_;    // names_.size() + 1 fenceposts
  std::vector<PdnsEntry> entries_;   // flat, grouped by owner
};

class PdnsDatabase {
 public:
  // Sightings within `merge_gap_days` of an existing entry's interval extend
  // that entry; a longer silence starts a new entry (mirrors how sensor
  // databases fence quiet periods). 0 means only adjacent/overlapping days
  // merge.
  explicit PdnsDatabase(int merge_gap_days = 30);

  // Records that (rrname, type, rdata) was observed on `day`.
  void Observe(const dns::Name& rrname, dns::RRType type,
               const std::string& rdata, util::CivilDay day,
               uint64_t count = 1);

  // Records continuous observation across an inclusive day interval.
  void ObserveInterval(const dns::Name& rrname, dns::RRType type,
                       const std::string& rdata, util::DayInterval interval,
                       uint64_t count_per_day = 1);

  // Left-hand wildcard search: every entry whose rrname equals `suffix` or
  // is a subdomain of it, matching `query`. Deterministic (canonical) order.
  std::vector<PdnsEntry> WildcardSearch(const dns::Name& suffix,
                                        const Query& query = Query()) const;

  // Exact-owner lookup.
  std::vector<PdnsEntry> Lookup(const dns::Name& rrname,
                                const Query& query = Query()) const;

  // Lowers the current contents into a flat, canonically sorted snapshot.
  // O(entries); amortized across the many wildcard searches a mining pass
  // performs. Entry-for-entry identical to the map-backed search results.
  PdnsSnapshot Freeze() const;

  size_t entry_count() const { return entry_count_; }
  size_t name_count() const { return by_name_.size(); }

 private:
  int merge_gap_days_;
  size_t entry_count_ = 0;
  // Canonical name order clusters subdomains behind their ancestor, which
  // makes wildcard search a contiguous range scan.
  std::map<dns::Name, std::vector<PdnsEntry>> by_name_;
};

}  // namespace govdns::pdns
