// Passive-DNS database.
//
// Models the interface the paper uses from Farsight's DNSDB: record sets
// keyed by (rrname, rrtype, rdata) carrying first-seen/last-seen timestamps
// and an observation count, with left-hand wildcard search
// ("*.gov.au" -> every record whose owner ends in gov.au) and time-window
// filtering. The world generator populates it by replaying ten years of
// synthetic zone history through Observe().
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "util/civil_time.h"
#include "util/status.h"

namespace govdns::pdns {

struct PdnsEntry {
  dns::Name rrname;
  dns::RRType type = dns::RRType::kNS;
  std::string rdata;  // presentation form, e.g. "ns1.example.com"
  util::DayInterval seen;
  uint64_t count = 0;

  friend bool operator==(const PdnsEntry&, const PdnsEntry&) = default;
};

// Filter for database searches.
struct Query {
  std::optional<dns::RRType> type;          // filter by type
  std::optional<util::DayInterval> window;  // keep entries overlapping it
  // Minimum inclusive length of the seen interval, in days. This is the
  // paper's stability filter (§III-C, 7 days).
  int min_duration_days = 1;
};

class PdnsDatabase {
 public:
  // Sightings within `merge_gap_days` of an existing entry's interval extend
  // that entry; a longer silence starts a new entry (mirrors how sensor
  // databases fence quiet periods). 0 means only adjacent/overlapping days
  // merge.
  explicit PdnsDatabase(int merge_gap_days = 30);

  // Records that (rrname, type, rdata) was observed on `day`.
  void Observe(const dns::Name& rrname, dns::RRType type,
               const std::string& rdata, util::CivilDay day,
               uint64_t count = 1);

  // Records continuous observation across an inclusive day interval.
  void ObserveInterval(const dns::Name& rrname, dns::RRType type,
                       const std::string& rdata, util::DayInterval interval,
                       uint64_t count_per_day = 1);

  // Left-hand wildcard search: every entry whose rrname equals `suffix` or
  // is a subdomain of it, matching `query`. Deterministic (canonical) order.
  std::vector<PdnsEntry> WildcardSearch(const dns::Name& suffix,
                                        const Query& query = Query()) const;

  // Exact-owner lookup.
  std::vector<PdnsEntry> Lookup(const dns::Name& rrname,
                                const Query& query = Query()) const;

  size_t entry_count() const { return entry_count_; }
  size_t name_count() const { return by_name_.size(); }

 private:
  bool Matches(const PdnsEntry& entry, const Query& query) const;

  int merge_gap_days_;
  size_t entry_count_ = 0;
  // Canonical name order clusters subdomains behind their ancestor, which
  // makes wildcard search a contiguous range scan.
  std::map<dns::Name, std::vector<PdnsEntry>> by_name_;
};

}  // namespace govdns::pdns
