#include "pdns/snapshot_io.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_map>

#include "ckpt/serial.h"
#include "dns/rr.h"

namespace govdns::pdns {

namespace {

util::Status Corrupt(const std::string& path, const std::string& what) {
  return util::DataLossError("pdns snapshot " + path + ": " + what);
}

bool KnownRRType(uint32_t t) {
  switch (static_cast<dns::RRType>(t)) {
    case dns::RRType::kA:
    case dns::RRType::kNS:
    case dns::RRType::kCNAME:
    case dns::RRType::kSOA:
    case dns::RRType::kPTR:
    case dns::RRType::kMX:
    case dns::RRType::kTXT:
    case dns::RRType::kAAAA:
      return true;
  }
  return false;
}

void AppendRaw(std::string& out, const RawPdnsEntry& raw) {
  out.append(reinterpret_cast<const char*>(&raw), sizeof raw);
}

void AppendU64s(std::string& out, const std::vector<uint64_t>& values) {
  out.append(reinterpret_cast<const char*>(values.data()),
             values.size() * sizeof(uint64_t));
}

}  // namespace

util::Status WritePdnsSnapshotFile(const PdnsSnapshot& snap,
                                   uint64_t fingerprint,
                                   const std::string& dir,
                                   const std::string& path) {
  if (std::endian::native != std::endian::little) {
    return util::InternalError(
        "snapshot files are little-endian; writing on a big-endian host is "
        "not supported");
  }
  const size_t names = snap.name_count();

  ckpt::Writer meta;
  meta.Size(names);
  meta.Size(snap.entry_count());

  std::string keys;
  std::vector<uint64_t> name_offsets;
  name_offsets.reserve(names + 1);
  name_offsets.push_back(0);
  for (size_t i = 0; i < names; ++i) {
    keys += snap.name(i).CanonicalKey();
    name_offsets.push_back(keys.size());
  }

  // rdata strings repeat heavily (one NS host serves many zones), so the
  // blob stores each distinct string once, first appearance first —
  // deterministic, and typically shrinks the file severalfold.
  std::string rdata_blob;
  std::unordered_map<std::string_view, uint64_t> rdata_at;
  std::string entry_bytes;
  std::vector<uint64_t> entry_offsets;
  entry_offsets.reserve(names + 1);
  entry_offsets.push_back(0);
  entry_bytes.reserve(snap.entry_count() * sizeof(RawPdnsEntry));
  uint64_t entry_total = 0;
  for (size_t i = 0; i < names; ++i) {
    for (const PdnsEntry& entry : snap.entries(i)) {
      RawPdnsEntry raw;
      auto [it, inserted] = rdata_at.emplace(entry.rdata, rdata_blob.size());
      if (inserted) rdata_blob += entry.rdata;
      raw.rdata_off = it->second;
      raw.rdata_len = static_cast<uint32_t>(entry.rdata.size());
      raw.type = static_cast<uint32_t>(entry.type);
      raw.seen_first = entry.seen.first;
      raw.seen_last = entry.seen.last;
      raw.count = entry.count;
      AppendRaw(entry_bytes, raw);
      ++entry_total;
    }
    entry_offsets.push_back(entry_total);
  }

  ckpt::SnapshotFileWriter file(kPdnsSnapshotFormatVersion, fingerprint);
  file.AddSection(kSecPdnsMeta, std::move(meta).Take());
  file.AddSection(kSecPdnsNameKeys, std::move(keys));
  std::string name_off_bytes, entry_off_bytes;
  AppendU64s(name_off_bytes, name_offsets);
  AppendU64s(entry_off_bytes, entry_offsets);
  file.AddSection(kSecPdnsNameOffsets, std::move(name_off_bytes));
  file.AddSection(kSecPdnsEntryOffsets, std::move(entry_off_bytes));
  file.AddSection(kSecPdnsEntries, std::move(entry_bytes));
  file.AddSection(kSecPdnsRdata, std::move(rdata_blob));
  return file.WriteTo(dir, path);
}

util::StatusOr<PdnsSnapshot> ReadPdnsSnapshotFileOwning(
    const std::string& path, uint64_t fingerprint) {
  // Parse-load decodes everything, so full payload validation is free
  // relative to the work already being done.
  auto view = ckpt::SnapshotFileView::Open(path, kPdnsSnapshotFormatVersion,
                                           fingerprint,
                                           ckpt::SnapshotValidation::kFull);
  if (!view.ok()) return view.status();
  auto mapped = MappedPdnsSnapshot::FromView(*std::move(view), path);
  if (!mapped.ok()) return mapped.status();

  const MappedPdnsSnapshot& m = *mapped;
  std::vector<dns::Name> names;
  names.reserve(m.name_count());
  std::vector<uint64_t> offsets;
  offsets.reserve(m.name_count() + 1);
  offsets.push_back(0);
  std::vector<PdnsEntry> entries;
  entries.reserve(m.entry_count());
  for (size_t i = 0; i < m.name_count(); ++i) {
    auto name = dns::Name::FromCanonicalKey(m.name_key(i));
    if (!name.ok()) {
      return Corrupt(path, "bad name key: " + name.status().ToString());
    }
    for (const PdnsEntryView v : m.entries(i)) {
      if (!KnownRRType(static_cast<uint32_t>(v.type))) {
        return Corrupt(path, "bad rrtype in entry");
      }
      entries.push_back(PdnsEntry{*name, v.type, std::string(v.rdata), v.seen,
                                  v.count});
    }
    names.push_back(*std::move(name));
    offsets.push_back(entries.size());
  }
  if (!std::is_sorted(names.begin(), names.end())) {
    return Corrupt(path, "name keys not in canonical order");
  }
  return PdnsSnapshot::FromSortedParts(std::move(names), std::move(offsets),
                                       std::move(entries));
}

util::StatusOr<MappedPdnsSnapshot> MappedPdnsSnapshot::Open(
    const std::string& path, uint64_t fingerprint,
    ckpt::SnapshotValidation validation) {
  auto view = ckpt::SnapshotFileView::Open(path, kPdnsSnapshotFormatVersion,
                                           fingerprint, validation);
  if (!view.ok()) return view.status();
  return FromView(*std::move(view), path);
}

util::StatusOr<MappedPdnsSnapshot> MappedPdnsSnapshot::OpenReadOnly(
    const std::string& path, uint64_t fingerprint,
    ckpt::SnapshotValidation validation) {
  auto view = ckpt::SnapshotFileView::OpenReadOnly(
      path, kPdnsSnapshotFormatVersion, fingerprint, validation);
  if (!view.ok()) return view.status();
  return FromView(*std::move(view), path);
}

util::StatusOr<MappedPdnsSnapshot> MappedPdnsSnapshot::FromView(
    ckpt::SnapshotFileView view, const std::string& path) {
  if (std::endian::native != std::endian::little) {
    return util::InternalError(
        "snapshot files are little-endian; this host is not");
  }
  auto meta = view.Section(kSecPdnsMeta);
  auto keys = view.Section(kSecPdnsNameKeys);
  auto name_off = view.Section(kSecPdnsNameOffsets);
  auto entry_off = view.Section(kSecPdnsEntryOffsets);
  auto entry_bytes = view.Section(kSecPdnsEntries);
  auto rdata = view.Section(kSecPdnsRdata);
  for (const auto* s : {&meta, &keys, &name_off, &entry_off, &entry_bytes,
                        &rdata}) {
    if (!s->ok()) return s->status();
  }

  ckpt::Reader r(*meta);
  uint64_t name_count = 0, entry_count = 0;
  if (!r.Size(&name_count) || !r.Size(&entry_count) || !r.AtEnd()) {
    return Corrupt(path, "bad meta section");
  }
  const uint64_t fenceposts = name_count + 1;
  if (name_off->size() != fenceposts * sizeof(uint64_t) ||
      entry_off->size() != fenceposts * sizeof(uint64_t)) {
    return Corrupt(path, "fencepost section size mismatch");
  }
  if (entry_bytes->size() != entry_count * sizeof(RawPdnsEntry)) {
    return Corrupt(path, "entry section size mismatch");
  }

  MappedPdnsSnapshot out;
  out.name_count_ = static_cast<size_t>(name_count);
  out.entry_count_ = static_cast<size_t>(entry_count);
  out.keys_ = *keys;
  out.rdata_ = *rdata;
  // Sections start 64-byte aligned (the container checks), so these casts
  // honor the types' natural alignment.
  out.name_offsets_ = reinterpret_cast<const uint64_t*>(name_off->data());
  out.entry_offsets_ = reinterpret_cast<const uint64_t*>(entry_off->data());
  out.raw_entries_ =
      reinterpret_cast<const RawPdnsEntry*>(entry_bytes->data());

  // O(1) boundary checks always; anything interior is covered by the
  // payload CRCs (verified here only under kFull — an O(n) interior walk
  // would defeat the O(1) mapped-open guarantee, so the fast path trusts
  // the CRC-protected atomic-publish protocol).
  if (out.name_offsets_[0] != 0 ||
      out.name_offsets_[name_count] != keys->size() ||
      out.entry_offsets_[0] != 0 ||
      out.entry_offsets_[name_count] != entry_count) {
    return Corrupt(path, "fencepost boundaries inconsistent");
  }
  out.view_ = std::move(view);
  return out;
}

dns::Name MappedPdnsSnapshot::name(size_t i) const {
  auto parsed = dns::Name::FromCanonicalKey(name_key(i));
  GOVDNS_CHECK(parsed.ok());
  return *std::move(parsed);
}

PdnsEntryView MappedPdnsSnapshot::EntryRange::Iterator::operator*() const {
  PdnsEntryView v;
  v.type = static_cast<dns::RRType>(raw_->type);
  v.rdata = rdata_.substr(raw_->rdata_off, raw_->rdata_len);
  v.seen = {raw_->seen_first, raw_->seen_last};
  v.count = raw_->count;
  return v;
}

std::pair<size_t, size_t> MappedPdnsSnapshot::WildcardNameRange(
    const dns::Name& suffix) const {
  if (suffix.IsRoot()) return {0, name_count_};
  const std::string key = suffix.CanonicalKey();
  // lower_bound over the key array: first name key >= suffix key.
  size_t lo = 0, hi = name_count_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (name_key(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // A name is in the subtree iff its key is `key` or `key` + '\0' + more
  // (the '\0' pins the label boundary). Within [lo, end) the subtree is a
  // prefix, so its end is a partition point.
  auto in_subtree = [&](size_t i) {
    const std::string_view k = name_key(i);
    return k.size() >= key.size() && k.substr(0, key.size()) == key &&
           (k.size() == key.size() || k[key.size()] == '\0');
  };
  size_t begin = lo;
  hi = name_count_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (in_subtree(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {begin, lo};
}

std::vector<PdnsEntry> MappedPdnsSnapshot::WildcardSearch(
    const dns::Name& suffix, const Query& query) const {
  std::vector<PdnsEntry> out;
  const auto [lo, hi] = WildcardNameRange(suffix);
  for (size_t n = lo; n < hi; ++n) {
    dns::Name owner;
    bool have_owner = false;
    for (const PdnsEntryView v : entries(n)) {
      if (!EntryMatches(v, query)) continue;
      if (!have_owner) {
        owner = name(n);
        have_owner = true;
      }
      out.push_back(
          PdnsEntry{owner, v.type, std::string(v.rdata), v.seen, v.count});
    }
  }
  return out;
}

}  // namespace govdns::pdns
