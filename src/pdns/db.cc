#include "pdns/db.h"

namespace govdns::pdns {

PdnsDatabase::PdnsDatabase(int merge_gap_days)
    : merge_gap_days_(merge_gap_days) {
  GOVDNS_CHECK(merge_gap_days >= 0);
}

void PdnsDatabase::Observe(const dns::Name& rrname, dns::RRType type,
                           const std::string& rdata, util::CivilDay day,
                           uint64_t count) {
  ObserveInterval(rrname, type, rdata, {day, day}, count);
}

void PdnsDatabase::ObserveInterval(const dns::Name& rrname, dns::RRType type,
                                   const std::string& rdata,
                                   util::DayInterval interval,
                                   uint64_t count_per_day) {
  GOVDNS_CHECK(interval.first <= interval.last);
  auto& entries = by_name_[rrname];
  PdnsEntry* merged = nullptr;
  for (PdnsEntry& entry : entries) {
    if (entry.type != type || entry.rdata != rdata) continue;
    // Mergeable if the new interval is within the gap of the existing one.
    util::DayInterval padded{entry.seen.first - merge_gap_days_ - 1,
                             entry.seen.last + merge_gap_days_ + 1};
    if (padded.Overlaps(interval)) {
      entry.seen.first = std::min(entry.seen.first, interval.first);
      entry.seen.last = std::max(entry.seen.last, interval.last);
      entry.count +=
          count_per_day * static_cast<uint64_t>(interval.LengthDays());
      merged = &entry;
      break;
    }
  }
  if (merged == nullptr) {
    entries.push_back(PdnsEntry{
        rrname, type, rdata, interval,
        count_per_day * static_cast<uint64_t>(interval.LengthDays())});
    ++entry_count_;
    return;
  }
  // The widened entry may now bridge into other entries of the same key;
  // coalesce until a fixed point so same-key entries stay disjoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < entries.size(); ++i) {
      PdnsEntry& entry = entries[i];
      if (&entry == merged || entry.type != type || entry.rdata != rdata) {
        continue;
      }
      util::DayInterval padded{merged->seen.first - merge_gap_days_ - 1,
                               merged->seen.last + merge_gap_days_ + 1};
      if (!padded.Overlaps(entry.seen)) continue;
      merged->seen.first = std::min(merged->seen.first, entry.seen.first);
      merged->seen.last = std::max(merged->seen.last, entry.seen.last);
      merged->count += entry.count;
      size_t merged_index = static_cast<size_t>(merged - entries.data());
      entries.erase(entries.begin() + static_cast<ptrdiff_t>(i));
      if (i < merged_index) --merged_index;
      merged = &entries[merged_index];
      --entry_count_;
      changed = true;
      break;
    }
  }
}

bool PdnsDatabase::Matches(const PdnsEntry& entry, const Query& query) const {
  if (query.type && entry.type != *query.type) return false;
  if (query.window && !entry.seen.Overlaps(*query.window)) return false;
  if (entry.seen.LengthDays() < query.min_duration_days) return false;
  return true;
}

std::vector<PdnsEntry> PdnsDatabase::WildcardSearch(const dns::Name& suffix,
                                                    const Query& query) const {
  std::vector<PdnsEntry> out;
  for (auto it = by_name_.lower_bound(suffix); it != by_name_.end(); ++it) {
    if (!it->first.IsSubdomainOf(suffix)) break;
    for (const PdnsEntry& entry : it->second) {
      if (Matches(entry, query)) out.push_back(entry);
    }
  }
  return out;
}

std::vector<PdnsEntry> PdnsDatabase::Lookup(const dns::Name& rrname,
                                            const Query& query) const {
  std::vector<PdnsEntry> out;
  auto it = by_name_.find(rrname);
  if (it == by_name_.end()) return out;
  for (const PdnsEntry& entry : it->second) {
    if (Matches(entry, query)) out.push_back(entry);
  }
  return out;
}

}  // namespace govdns::pdns
