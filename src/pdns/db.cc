#include "pdns/db.h"

#include <algorithm>

namespace govdns::pdns {

PdnsDatabase::PdnsDatabase(int merge_gap_days)
    : merge_gap_days_(merge_gap_days) {
  GOVDNS_CHECK(merge_gap_days >= 0);
}

void PdnsDatabase::Observe(const dns::Name& rrname, dns::RRType type,
                           const std::string& rdata, util::CivilDay day,
                           uint64_t count) {
  ObserveInterval(rrname, type, rdata, {day, day}, count);
}

void PdnsDatabase::ObserveInterval(const dns::Name& rrname, dns::RRType type,
                                   const std::string& rdata,
                                   util::DayInterval interval,
                                   uint64_t count_per_day) {
  GOVDNS_CHECK(interval.first <= interval.last);
  auto& entries = by_name_[rrname];
  PdnsEntry* merged = nullptr;
  for (PdnsEntry& entry : entries) {
    if (entry.type != type || entry.rdata != rdata) continue;
    // Mergeable if the new interval is within the gap of the existing one.
    util::DayInterval padded{entry.seen.first - merge_gap_days_ - 1,
                             entry.seen.last + merge_gap_days_ + 1};
    if (padded.Overlaps(interval)) {
      entry.seen.first = std::min(entry.seen.first, interval.first);
      entry.seen.last = std::max(entry.seen.last, interval.last);
      entry.count +=
          count_per_day * static_cast<uint64_t>(interval.LengthDays());
      merged = &entry;
      break;
    }
  }
  if (merged == nullptr) {
    entries.push_back(PdnsEntry{
        rrname, type, rdata, interval,
        count_per_day * static_cast<uint64_t>(interval.LengthDays())});
    ++entry_count_;
    return;
  }
  // The widened entry may now bridge into other entries of the same key;
  // coalesce until a fixed point so same-key entries stay disjoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < entries.size(); ++i) {
      PdnsEntry& entry = entries[i];
      if (&entry == merged || entry.type != type || entry.rdata != rdata) {
        continue;
      }
      util::DayInterval padded{merged->seen.first - merge_gap_days_ - 1,
                               merged->seen.last + merge_gap_days_ + 1};
      if (!padded.Overlaps(entry.seen)) continue;
      merged->seen.first = std::min(merged->seen.first, entry.seen.first);
      merged->seen.last = std::max(merged->seen.last, entry.seen.last);
      merged->count += entry.count;
      size_t merged_index = static_cast<size_t>(merged - entries.data());
      entries.erase(entries.begin() + static_cast<ptrdiff_t>(i));
      if (i < merged_index) --merged_index;
      merged = &entries[merged_index];
      --entry_count_;
      changed = true;
      break;
    }
  }
}

namespace {

// The one matching rule, over whichever representation holds the fields.
template <typename Entry>
bool MatchesImpl(const Entry& entry, const Query& query) {
  if (query.type && entry.type != *query.type) return false;
  if (query.window && !entry.seen.Overlaps(*query.window)) return false;
  // Gap semantics, matching the §III-C stability filter (see db.h).
  if (entry.seen.last - entry.seen.first < query.min_seen_gap_days) {
    return false;
  }
  return true;
}

}  // namespace

bool EntryMatches(const PdnsEntry& entry, const Query& query) {
  return MatchesImpl(entry, query);
}

bool EntryMatches(const PdnsEntryView& entry, const Query& query) {
  return MatchesImpl(entry, query);
}

std::vector<PdnsEntry> PdnsDatabase::WildcardSearch(const dns::Name& suffix,
                                                    const Query& query) const {
  std::vector<PdnsEntry> out;
  for (auto it = by_name_.lower_bound(suffix); it != by_name_.end(); ++it) {
    if (!it->first.IsSubdomainOf(suffix)) break;
    for (const PdnsEntry& entry : it->second) {
      if (EntryMatches(entry, query)) out.push_back(entry);
    }
  }
  return out;
}

std::vector<PdnsEntry> PdnsDatabase::Lookup(const dns::Name& rrname,
                                            const Query& query) const {
  std::vector<PdnsEntry> out;
  auto it = by_name_.find(rrname);
  if (it == by_name_.end()) return out;
  for (const PdnsEntry& entry : it->second) {
    if (EntryMatches(entry, query)) out.push_back(entry);
  }
  return out;
}

PdnsSnapshot PdnsDatabase::Freeze() const {
  PdnsSnapshot snap;
  snap.names_.reserve(by_name_.size());
  snap.offsets_.reserve(by_name_.size() + 1);
  snap.entries_.reserve(entry_count_);
  snap.offsets_.push_back(0);
  // The map already iterates in canonical order; per-owner entry order is
  // preserved so snapshot searches are entry-for-entry identical to the
  // map-backed path.
  for (const auto& [name, entries] : by_name_) {
    snap.names_.push_back(name);
    snap.entries_.insert(snap.entries_.end(), entries.begin(), entries.end());
    snap.offsets_.push_back(snap.entries_.size());
  }
  return snap;
}

PdnsSnapshot PdnsSnapshot::FromSortedParts(std::vector<dns::Name> names,
                                           std::vector<uint64_t> offsets,
                                           std::vector<PdnsEntry> entries) {
  GOVDNS_CHECK(offsets.size() == names.size() + 1);
  GOVDNS_CHECK(offsets.front() == 0 && offsets.back() == entries.size());
  GOVDNS_CHECK(std::is_sorted(offsets.begin(), offsets.end()));
  GOVDNS_CHECK(std::is_sorted(names.begin(), names.end()));
  PdnsSnapshot snap;
  snap.names_ = std::move(names);
  snap.offsets_ = std::move(offsets);
  snap.entries_ = std::move(entries);
  return snap;
}

std::pair<size_t, size_t> PdnsSnapshot::WildcardNameRange(
    const dns::Name& suffix) const {
  auto lo = std::lower_bound(names_.begin(), names_.end(), suffix);
  // Within [lo, end) the subtree of `suffix` is a prefix (see header), so
  // its end is a partition point rather than a linear scan.
  auto hi = std::partition_point(lo, names_.end(), [&](const dns::Name& n) {
    return n.IsSubdomainOf(suffix);
  });
  return {static_cast<size_t>(lo - names_.begin()),
          static_cast<size_t>(hi - names_.begin())};
}

std::span<const PdnsEntry> PdnsSnapshot::WildcardSpan(
    const dns::Name& suffix) const {
  if (names_.empty()) return {};  // incl. default-constructed snapshots
  auto [lo, hi] = WildcardNameRange(suffix);
  return {entries_.data() + offsets_[lo], offsets_[hi] - offsets_[lo]};
}

std::vector<PdnsEntry> PdnsSnapshot::WildcardSearch(const dns::Name& suffix,
                                                    const Query& query) const {
  std::vector<PdnsEntry> out;
  VisitWildcard(suffix, query,
                [&](const PdnsEntry& entry) { out.push_back(entry); });
  return out;
}

}  // namespace govdns::pdns
