// Lightweight Status / StatusOr error-handling primitives.
//
// Expected, recoverable failures (a malformed DNS message, an unresponsive
// server) are reported through Status / StatusOr<T> return values.
// Programming errors (violated preconditions) abort via GOVDNS_CHECK.
#pragma once

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace govdns::util {

// Coarse error taxonomy; enough to let callers branch on failure kind.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kParseError,        // wire/text data could not be decoded
  kNotFound,          // lookup had no result
  kTimeout,           // simulated network timeout (silent server, loss)
  kRefused,           // server actively refused
  kUnavailable,       // endpoint unreachable / not registered
  kFailedPrecondition,
  kInternal,
  kDataLoss,          // stored data is missing, truncated, or corrupt
};

std::string_view ErrorCodeName(ErrorCode code);

// A success-or-error value. Cheap to copy on success (no message allocated).
class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status ParseError(std::string msg) {
  return {ErrorCode::kParseError, std::move(msg)};
}
inline Status NotFoundError(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status TimeoutError(std::string msg) {
  return {ErrorCode::kTimeout, std::move(msg)};
}
inline Status RefusedError(std::string msg) {
  return {ErrorCode::kRefused, std::move(msg)};
}
inline Status UnavailableError(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Status FailedPreconditionError(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status InternalError(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}
inline Status DataLossError(std::string msg) {
  return {ErrorCode::kDataLoss, std::move(msg)};
}

// Holds either a T or a non-OK Status. Accessing value() on error aborts,
// so callers must test ok() (or use value_or) first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed from OK status");
    }
  }
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const {
    CheckOk();
    return &*value_;
  }
  T* operator->() {
    CheckOk();
    return &*value_;
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "StatusOr::value() on error: " << status_.ToString()
                << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

// Precondition/invariant check: aborts with location on failure. Used for
// programming errors only, never for data-dependent failures.
#define GOVDNS_CHECK(expr)                                            \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::govdns::util::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                 \
  } while (0)

// Propagates a non-OK Status from an expression returning Status.
#define GOVDNS_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::govdns::util::Status _st = (expr);         \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace govdns::util
