// Minimal streaming JSON writer.
//
// Emits syntactically valid JSON with correct string escaping and
// locale-independent number formatting. Used by the export layer to produce
// machine-readable study results; deliberately writer-only (this codebase
// never needs to parse JSON).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace govdns::util {

class JsonWriter {
 public:
  JsonWriter() = default;

  // Containers. Every Begin* must be matched by the corresponding End*.
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Within an object: writes the key and leaves the writer expecting a
  // value (a scalar call or a Begin*).
  JsonWriter& Key(std::string_view key);

  // Scalars (as values inside arrays, or after Key inside objects).
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Convenience: Key + scalar.
  JsonWriter& Kv(std::string_view key, std::string_view value) {
    return Key(key).String(value);
  }
  JsonWriter& Kv(std::string_view key, const char* value) {
    return Key(key).String(value);
  }
  JsonWriter& Kv(std::string_view key, int64_t value) {
    return Key(key).Int(value);
  }
  JsonWriter& Kv(std::string_view key, int value) {
    return Key(key).Int(value);
  }
  JsonWriter& Kv(std::string_view key, double value) {
    return Key(key).Double(value);
  }
  JsonWriter& Kv(std::string_view key, bool value) {
    return Key(key).Bool(value);
  }

  // The finished document. Aborts if containers are unbalanced.
  std::string TakeString();

  static std::string Escape(std::string_view raw);

 private:
  void BeforeValue();

  std::string out_;
  // Per-open-container: whether a value has been emitted yet.
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

}  // namespace govdns::util
