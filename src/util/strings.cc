#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace govdns::util {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool EndsWithIgnoreCase(std::string_view text, std::string_view suffix) {
  if (suffix.size() > text.size()) return false;
  return EqualsIgnoreCase(text.substr(text.size() - suffix.size()), suffix);
}

bool ContainsIgnoreCase(std::string_view text, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > text.size()) return false;
  for (size_t i = 0; i + needle.size() <= text.size(); ++i) {
    if (EqualsIgnoreCase(text.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

std::string WithCommas(int64_t n) {
  std::string digits = std::to_string(n < 0 ? -n : n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (n < 0) out += '-';
  return {out.rbegin(), out.rend()};
}

std::string Percent(double ratio, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, ratio * 100.0);
  return buf;
}

}  // namespace govdns::util
