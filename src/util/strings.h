// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace govdns::util {

// Splits on a single character; empty pieces are kept ("a..b" -> a, "", b).
std::vector<std::string> Split(std::string_view text, char sep);

std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// ASCII-only lowering, sufficient for DNS hostnames.
std::string ToLower(std::string_view text);

bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// True if `text` ends with `suffix`, ASCII case-insensitively.
bool EndsWithIgnoreCase(std::string_view text, std::string_view suffix);

bool ContainsIgnoreCase(std::string_view text, std::string_view needle);

// Formats n with thousands separators: 1234567 -> "1,234,567".
std::string WithCommas(int64_t n);

// Formats a ratio as a percentage with one decimal: 0.2954 -> "29.5%".
std::string Percent(double ratio, int decimals = 1);

}  // namespace govdns::util
