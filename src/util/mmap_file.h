// Read-only memory-mapped file with a graceful read fallback.
//
// MappedFile::Open maps the whole file PROT_READ/MAP_PRIVATE and exposes it
// as a string_view. On filesystems where mmap fails (some network or
// synthetic filesystems return ENODEV/EINVAL), it silently falls back to
// reading the file into an owned buffer — callers get the same string_view
// either way and can ask mapped() when they need to know which path served
// them (benchmarks do; correctness code must not care).
//
// The mapping is private and read-only, so a MappedFile can be shared by
// value-captured views across threads without synchronization once Open
// returns.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

namespace govdns::util {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Reset(); }

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  // Maps `path` read-only; falls back to a plain read on mmap failure.
  // kNotFound for a missing file, kDataLoss for IO errors.
  static StatusOr<MappedFile> Open(const std::string& path);

  // As Open, but never mmaps — always reads into an owned buffer. Exists so
  // benchmarks can measure the fallback path deliberately.
  static StatusOr<MappedFile> OpenReadOnly(const std::string& path);

  std::string_view view() const { return {data_, size_}; }
  const char* data() const { return data_; }
  size_t size() const { return size_; }
  // True when the bytes come from an actual mmap (zero-copy), false when
  // they were read into fallback_.
  bool mapped() const { return mapped_; }

 private:
  void Reset();

  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::string fallback_;  // owns the bytes when !mapped_
};

}  // namespace govdns::util
