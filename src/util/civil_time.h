// Proleptic-Gregorian civil-date arithmetic.
//
// The passive-DNS store and the longitudinal analyses work in whole days.
// A CivilDay is a count of days since 1970-01-01 (negative before), using
// Howard Hinnant's days_from_civil algorithm. No time zones, no wall clock.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace govdns::util {

using CivilDay = int32_t;  // days since 1970-01-01

struct CivilDate {
  int year = 1970;
  int month = 1;  // [1, 12]
  int day = 1;    // [1, 31]

  friend bool operator==(const CivilDate&, const CivilDate&) = default;
};

bool IsLeapYear(int year);
int DaysInMonth(int year, int month);

// Converts {y, m, d} to days-since-epoch. Aborts on out-of-range month/day.
CivilDay DayFromDate(const CivilDate& date);
inline CivilDay DayFromYmd(int y, int m, int d) {
  return DayFromDate({y, m, d});
}

CivilDate DateFromDay(CivilDay day);

// First and last day of a calendar year.
CivilDay YearStart(int year);
CivilDay YearEnd(int year);
// Number of days in a year (365 or 366).
int DaysInYear(int year);

// "YYYY-MM-DD".
std::string FormatDay(CivilDay day);
StatusOr<CivilDay> ParseDay(const std::string& text);

// A half-open-free inclusive interval of days, [first, last].
struct DayInterval {
  CivilDay first = 0;
  CivilDay last = 0;

  bool Contains(CivilDay d) const { return first <= d && d <= last; }
  bool Overlaps(const DayInterval& o) const {
    return first <= o.last && o.first <= last;
  }
  // Inclusive length in days; 1 for a single-day interval.
  int32_t LengthDays() const { return last - first + 1; }

  friend bool operator==(const DayInterval&, const DayInterval&) = default;
};

}  // namespace govdns::util
