#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/status.h"

namespace govdns::util {

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  GOVDNS_CHECK(!has_value_.empty() && !pending_key_);
  has_value_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  GOVDNS_CHECK(!has_value_.empty() && !pending_key_);
  has_value_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  GOVDNS_CHECK(!has_value_.empty() && !pending_key_);
  if (has_value_.back()) out_ += ',';
  has_value_.back() = true;
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string JsonWriter::TakeString() {
  GOVDNS_CHECK(has_value_.empty() && !pending_key_);
  return std::move(out_);
}

}  // namespace govdns::util
