#include "util/civil_time.h"

#include <cstdio>

namespace govdns::util {

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  GOVDNS_CHECK(month >= 1 && month <= 12);
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

CivilDay DayFromDate(const CivilDate& date) {
  GOVDNS_CHECK(date.month >= 1 && date.month <= 12);
  GOVDNS_CHECK(date.day >= 1 && date.day <= DaysInMonth(date.year, date.month));
  // Howard Hinnant's days_from_civil.
  int y = date.year;
  const int m = date.month;
  const int d = date.day;
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return static_cast<CivilDay>(era * 146097 + static_cast<int>(doe) - 719468);
}

CivilDate DateFromDay(CivilDay day) {
  // Howard Hinnant's civil_from_days.
  int z = day + 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);       // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);       // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                            // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                    // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                         // [1, 12]
  return CivilDate{y + (m <= 2), static_cast<int>(m), static_cast<int>(d)};
}

CivilDay YearStart(int year) { return DayFromYmd(year, 1, 1); }
CivilDay YearEnd(int year) { return DayFromYmd(year, 12, 31); }
int DaysInYear(int year) { return IsLeapYear(year) ? 366 : 365; }

std::string FormatDay(CivilDay day) {
  CivilDate d = DateFromDay(day);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

StatusOr<CivilDay> ParseDay(const std::string& text) {
  int y = 0, m = 0, d = 0;
  char tail = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d%c", &y, &m, &d, &tail) != 3) {
    return ParseError("bad date: " + text);
  }
  if (m < 1 || m > 12 || d < 1 || d > DaysInMonth(y, m)) {
    return ParseError("date out of range: " + text);
  }
  return DayFromYmd(y, m, d);
}

}  // namespace govdns::util
