#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace govdns::util {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  const int err = errno;
  if (err == ENOENT) return NotFoundError(what + " " + path + ": no such file");
  return DataLossError(what + " " + path + ": " + std::strerror(err));
}

}  // namespace

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    fallback_ = std::move(other.fallback_);
    mapped_ = other.mapped_;
    size_ = other.size_;
    data_ = mapped_ ? other.data_ : fallback_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void MappedFile::Reset() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status status = Errno("stat", path);
    ::close(fd);
    return status;
  }
  MappedFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  if (out.size_ == 0) {
    // mmap(0) is EINVAL; an empty file is a valid empty view.
    ::close(fd);
    out.data_ = out.fallback_.data();
    return out;
  }
  void* addr = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr != MAP_FAILED) {
    out.data_ = static_cast<const char*>(addr);
    out.mapped_ = true;
    return out;
  }
  return OpenReadOnly(path);
}

StatusOr<MappedFile> MappedFile::OpenReadOnly(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status status = Errno("stat", path);
    ::close(fd);
    return status;
  }
  MappedFile out;
  out.fallback_.resize(static_cast<size_t>(st.st_size));
  size_t done = 0;
  while (done < out.fallback_.size()) {
    const ssize_t n =
        ::read(fd, out.fallback_.data() + done, out.fallback_.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) {
      ::close(fd);
      return DataLossError("read " + path + ": file shrank during read");
    }
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  out.size_ = out.fallback_.size();
  out.data_ = out.fallback_.data();
  return out;
}

}  // namespace govdns::util
