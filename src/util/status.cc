#include "util/status.h"

namespace govdns::util {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kParseError:
      return "PARSE_ERROR";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kTimeout:
      return "TIMEOUT";
    case ErrorCode::kRefused:
      return "REFUSED";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {
void CheckFailed(const char* file, int line, const char* expr) {
  std::cerr << "GOVDNS_CHECK failed at " << file << ":" << line << ": " << expr
            << std::endl;
  std::abort();
}
}  // namespace internal

}  // namespace govdns::util
