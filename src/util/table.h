// Plain-text table rendering for benchmark harnesses and examples.
//
// Every bench binary regenerates a table or figure from the paper; TextTable
// renders the rows with aligned columns, and WriteCsv provides a
// machine-readable twin.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace govdns::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  // Adds a horizontal separator before the next row.
  void AddSeparator();

  void Print(std::ostream& os) const;
  std::string ToString() const;
  std::string ToCsv() const;

  size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace govdns::util
