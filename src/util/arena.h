// Bump-allocated scratch memory for tight per-item loops (DESIGN.md §6j).
//
// A BumpArena hands out raw storage by advancing an offset into a block and
// reclaims everything at once with Reset() — the allocation pattern of the
// miner's per-seed scratch, where thousands of short-lived vectors are built
// and abandoned seed after seed. Reset() is O(1) in the steady state: after
// the first seed has sized the arena, every later seed reuses one block and
// no allocation reaches the heap at all. When a seed outgrows the arena,
// overflow blocks chain on and the next Reset() coalesces them into a single
// block of the high-water size, so growth is paid once, not per seed.
//
// ArenaVec<T> is the companion container: a minimal push_back vector over
// arena storage for trivially copyable, trivially destructible element
// types (the only kinds scratch data should be). It never frees — grow
// abandons the old span inside the arena — which is exactly right for
// scratch that dies at the next Reset().
//
// CacheAligned<T> pads a value to its own cache line. The miner's atomic
// seed dispensers and per-worker accumulators are wrapped in it so that
// adjacent hot state cannot false-share a line at 8+ workers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/status.h"

namespace govdns::util {

inline constexpr size_t kCacheLineBytes = 64;

// A value padded and aligned to a full cache line. `alignas` on the struct
// rounds sizeof up to the alignment, so arrays of CacheAligned<T> place each
// element on its own line.
template <typename T>
struct alignas(kCacheLineBytes) CacheAligned {
  T value{};
};

class BumpArena {
 public:
  explicit BumpArena(size_t initial_bytes = 1 << 16)
      : initial_bytes_(initial_bytes < kMinBlock ? kMinBlock : initial_bytes) {}

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  // Storage for `bytes` bytes aligned to `align` (a power of two). Never
  // returns null; valid until the next Reset().
  void* Alloc(size_t bytes, size_t align) {
    GOVDNS_CHECK(align != 0 && (align & (align - 1)) == 0);
    for (;;) {
      if (cur_ < blocks_.size()) {
        Block& b = blocks_[cur_];
        size_t off = (off_ + align - 1) & ~(align - 1);
        if (off + bytes <= b.size) {
          off_ = off + bytes;
          return b.data.get() + off;
        }
        // Try the next block (only reachable mid-seed after an overflow).
        ++cur_;
        off_ = 0;
        continue;
      }
      AddBlock(bytes + align);
    }
  }

  template <typename T>
  T* AllocArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(Alloc(count * sizeof(T), alignof(T)));
  }

  // Reclaims every allocation. If the last cycle overflowed into extra
  // blocks, they are coalesced into one block of at least the total size,
  // so the steady state is a single block and an O(1) reset.
  void Reset() {
    if (blocks_.size() > 1) {
      size_t total = 0;
      for (const Block& b : blocks_) total += b.size;
      blocks_.clear();
      AddBlock(total);
    }
    cur_ = 0;
    off_ = 0;
  }

  size_t block_count() const { return blocks_.size(); }
  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  static constexpr size_t kMinBlock = 256;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };

  void AddBlock(size_t at_least) {
    size_t size = blocks_.empty() ? initial_bytes_ : blocks_.back().size * 2;
    if (size < at_least) size = at_least;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    cur_ = blocks_.size() - 1;
    off_ = 0;
  }

  size_t initial_bytes_;
  std::vector<Block> blocks_;
  size_t cur_ = 0;  // block currently being bumped
  size_t off_ = 0;  // bump offset within blocks_[cur_]
};

// Minimal vector over arena storage. Construct after the owning arena's
// latest Reset(); clear() keeps the span for reuse within the cycle.
// Elements must not own resources (no destructor runs, grow relocates by
// copy) — trivially destructible and trivially copy-constructible covers
// scalars and std::pair of scalars, the scratch types this exists for.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_destructible_v<T> &&
                std::is_trivially_copy_constructible_v<T>);

 public:
  explicit ArenaVec(BumpArena* arena) : arena_(arena) {}

  void push_back(const T& v) {
    if (size_ == cap_) Grow();
    data_[size_++] = v;
  }
  template <typename... Args>
  void emplace_back(Args&&... args) {
    push_back(T(std::forward<Args>(args)...));
  }

  void clear() { size_ = 0; }
  void resize_down(size_t n) {
    GOVDNS_CHECK(n <= size_);
    size_ = n;
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void Grow() {
    size_t cap = cap_ == 0 ? 8 : cap_ * 2;
    T* data = arena_->AllocArray<T>(cap);
    std::copy(data_, data_ + size_, data);
    data_ = data;
    cap_ = cap;
  }

  BumpArena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t cap_ = 0;
};

}  // namespace govdns::util
