#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/status.h"

namespace govdns::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  GOVDNS_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  GOVDNS_CHECK(cells.size() == header_.size());
  rows_.push_back({std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void TextTable::AddSeparator() { pending_separator_ = true; }

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const Row& row : rows_) {
    for (size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }
  auto print_sep = [&] {
    for (size_t w : widths) os << '+' << std::string(w + 2, '-');
    os << "+\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      os << "| " << cells[i] << std::string(widths[i] - cells[i].size() + 1, ' ');
    }
    os << "|\n";
  };
  print_sep();
  print_cells(header_);
  print_sep();
  for (const Row& row : rows_) {
    if (row.separator_before) print_sep();
    print_cells(row.cells);
  }
  print_sep();
}

std::string TextTable::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << ',';
      os << CsvEscape(cells[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const Row& row : rows_) emit(row.cells);
  return os.str();
}

}  // namespace govdns::util
