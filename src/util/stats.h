// Descriptive statistics used by the analyses and report generators.
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace govdns::util {

// Mode of a non-empty list; ties broken toward the smaller value. This is
// the statistic the paper applies to NS_daily (Fig. 5).
int ModeOf(const std::vector<int>& values);

// p in [0, 1]; linear interpolation between order statistics.
double Percentile(std::vector<double> values, double p);

double Median(std::vector<double> values);
double Mean(const std::vector<double>& values);

// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double cumulative_fraction = 0.0;  // P(X <= value)
};

// Empirical CDF over distinct values, ascending.
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values);

// Fixed-boundary histogram: counts[i] covers [edges[i], edges[i+1]), with
// the final bucket inclusive of the last edge.
std::vector<int64_t> Histogram(const std::vector<double>& values,
                               const std::vector<double>& edges);

}  // namespace govdns::util
