#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace govdns::util {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t HashString(std::string_view s, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return SplitMix64(h);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

Rng Rng::Fork(std::string_view stream_name) const {
  return Rng(HashString(stream_name, seed_));
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  GOVDNS_CHECK(bound > 0);
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GOVDNS_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full range
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  GOVDNS_CHECK(n > 0);
  GOVDNS_CHECK(s > 0.0);
  // Inverse-CDF via the harmonic normalizer, computed by bisection on a
  // partial-sum approximation: exact for small n, approximate tail for
  // large n. n in this codebase is at most a few thousand, so we compute
  // the normalizer directly once per call for n <= 4096 and cache nothing
  // (callers draw rarely relative to its cost).
  if (n == 1) return 1;
  double total = 0.0;
  for (uint64_t k = 1; k <= n; ++k) total += 1.0 / std::pow(double(k), s);
  double target = UniformDouble() * total;
  double run = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    run += 1.0 / std::pow(double(k), s);
    if (run >= target) return k;
  }
  return n;
}

double Rng::Gaussian() {
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * Gaussian());
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  GOVDNS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    GOVDNS_CHECK(w >= 0.0);
    total += w;
  }
  GOVDNS_CHECK(total > 0.0);
  double target = UniformDouble() * total;
  double run = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    run += weights[i];
    if (run >= target) return i;
  }
  return weights.size() - 1;
}

}  // namespace govdns::util
