#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace govdns::util {

int ModeOf(const std::vector<int>& values) {
  GOVDNS_CHECK(!values.empty());
  std::map<int, int> counts;
  for (int v : values) ++counts[v];
  int best_value = counts.begin()->first;
  int best_count = 0;
  for (const auto& [value, count] : counts) {
    if (count > best_count) {  // map order makes ties favor smaller values
      best_count = count;
      best_value = value;
    }
  }
  return best_value;
}

double Percentile(std::vector<double> values, double p) {
  GOVDNS_CHECK(!values.empty());
  GOVDNS_CHECK(p >= 0.0 && p <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = p * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) {
  return Percentile(std::move(values), 0.5);
}

double Mean(const std::vector<double>& values) {
  GOVDNS_CHECK(!values.empty());
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values) {
  GOVDNS_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  std::vector<CdfPoint> out;
  const double n = static_cast<double>(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (i + 1 < values.size() && values[i + 1] == values[i]) continue;
    out.push_back({values[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::vector<int64_t> Histogram(const std::vector<double>& values,
                               const std::vector<double>& edges) {
  GOVDNS_CHECK(edges.size() >= 2);
  std::vector<int64_t> counts(edges.size() - 1, 0);
  for (double v : values) {
    if (v < edges.front() || v > edges.back()) continue;
    // Last bucket is inclusive of the final edge.
    auto it = std::upper_bound(edges.begin(), edges.end(), v);
    size_t idx = static_cast<size_t>(it - edges.begin());
    if (idx == 0) continue;
    if (idx >= edges.size()) idx = edges.size() - 1;
    ++counts[idx - 1];
  }
  return counts;
}

}  // namespace govdns::util
