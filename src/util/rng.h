// Deterministic random number generation.
//
// Every stochastic decision in the simulator flows through Rng, seeded from
// the world configuration, so a given seed reproduces a byte-identical world.
// The generator is xoshiro256** (public domain, Blackman & Vigna), seeded via
// SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace govdns::util {

// SplitMix64 step; also useful as a cheap stateless hash/mixer.
uint64_t SplitMix64(uint64_t& state);

// Mixes a string into a 64-bit value (FNV-1a followed by a SplitMix64 round).
// Used to derive independent sub-streams from stable names.
uint64_t HashString(std::string_view s, uint64_t seed = 0);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Derives an independent generator for a named sub-stream. Deriving by a
  // stable name (e.g. a country code) keeps unrelated parts of world
  // generation independent of each other's draw counts.
  Rng Fork(std::string_view stream_name) const;

  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling, so
  // the result is exactly uniform.
  uint64_t UniformU64(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double UniformDouble();

  bool Bernoulli(double p);

  // Zipf-distributed rank in [1, n] with exponent s > 0. Heavy-tailed sizes
  // (country zone counts, provider popularity) come from this.
  uint64_t Zipf(uint64_t n, double s);

  // Approximately log-normally distributed positive double.
  double LogNormal(double mu, double sigma);

  // Standard normal via Box-Muller (no cached spare: deterministic stream).
  double Gaussian();

  // Picks an index in [0, weights.size()) proportionally to weights.
  // Total weight must be positive.
  size_t WeightedIndex(const std::vector<double>& weights);

  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    GOVDNS_CHECK(!v.empty());
    return v[UniformU64(v.size())];
  }

  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformU64(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
  uint64_t s_[4];
};

}  // namespace govdns::util
