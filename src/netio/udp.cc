#include "netio/udp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace govdns::netio {

namespace {

sockaddr_in MakeSockaddr(geo::IPv4 address, uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(address.bits());
  return sa;
}

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

UdpTransport::UdpTransport(Options options) : options_(options) {}

util::StatusOr<std::vector<uint8_t>> UdpTransport::Exchange(
    geo::IPv4 server, const std::vector<uint8_t>& wire_query) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return util::InternalError(Errno("socket"));
  // RAII for the descriptor.
  struct Closer {
    int fd;
    ~Closer() { ::close(fd); }
  } closer{fd};

  sockaddr_in dest = MakeSockaddr(server, options_.port);
  ssize_t sent =
      ::sendto(fd, wire_query.data(), wire_query.size(), 0,
               reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  if (sent < 0) return util::UnavailableError(Errno("sendto"));

  pollfd pfd{fd, POLLIN, 0};
  int ready = ::poll(&pfd, 1, options_.timeout_ms);
  if (ready < 0) return util::InternalError(Errno("poll"));
  if (ready == 0) {
    return util::TimeoutError("no reply from " + server.ToString());
  }

  std::vector<uint8_t> buffer(
      static_cast<size_t>(options_.max_response_bytes));
  sockaddr_in from{};
  socklen_t from_len = sizeof(from);
  ssize_t got = ::recvfrom(fd, buffer.data(), buffer.size(), 0,
                           reinterpret_cast<sockaddr*>(&from), &from_len);
  if (got < 0) return util::UnavailableError(Errno("recvfrom"));
  buffer.resize(static_cast<size_t>(got));
  return buffer;
}

UdpServer::~UdpServer() { Stop(); }

util::Status UdpServer::Start(geo::IPv4 bind_address, uint16_t port,
                              Handler handler) {
  GOVDNS_CHECK(handler != nullptr);
  if (running_.load()) return util::FailedPreconditionError("already running");

  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return util::InternalError(Errno("socket"));

  sockaddr_in addr = MakeSockaddr(bind_address, port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd_);
    fd_ = -1;
    return util::UnavailableError(Errno("bind"));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    ::close(fd_);
    fd_ = -1;
    return util::InternalError(Errno("getsockname"));
  }
  port_ = ntohs(bound.sin_port);

  handler_ = std::move(handler);
  running_.store(true);
  thread_ = std::thread([this] { ServeLoop(); });
  return util::Status::Ok();
}

void UdpServer::ServeLoop() {
  std::vector<uint8_t> buffer(65536);
  while (running_.load()) {
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout: re-check running_
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    ssize_t got = ::recvfrom(fd_, buffer.data(), buffer.size(), 0,
                             reinterpret_cast<sockaddr*>(&from), &from_len);
    if (got <= 0) continue;
    ++requests_;
    std::vector<uint8_t> request(buffer.begin(), buffer.begin() + got);
    std::vector<uint8_t> reply = handler_(request);
    if (reply.empty()) continue;  // a handler may choose silence
    (void)::sendto(fd_, reply.data(), reply.size(), 0,
                   reinterpret_cast<const sockaddr*>(&from), from_len);
  }
}

void UdpServer::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace govdns::netio
