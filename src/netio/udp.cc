#include "netio/udp.h"

#include <poll.h>
#include <unistd.h>

#include <chrono>

#include "netio/sockaddr.h"

namespace govdns::netio {

UdpTransport::UdpTransport(Options options) : options_(options) {}

util::StatusOr<std::vector<uint8_t>> UdpTransport::Exchange(
    geo::IPv4 server, const std::vector<uint8_t>& wire_query) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return util::InternalError(Errno("socket"));
  // RAII for the descriptor.
  struct Closer {
    int fd;
    ~Closer() { ::close(fd); }
  } closer{fd};

  sockaddr_in dest = MakeSockaddr(server, options_.port);
  ssize_t sent;
  do {
    sent = ::sendto(fd, wire_query.data(), wire_query.size(), 0,
                    reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  } while (sent < 0 && errno == EINTR);
  if (sent < 0) return util::UnavailableError(Errno("sendto"));
  if (static_cast<size_t>(sent) != wire_query.size()) {
    // A partially-sent datagram is not a DNS query; the server would parse
    // garbage. Fail loudly instead of waiting out the timeout.
    return util::InternalError("short sendto: " + std::to_string(sent) +
                               " of " + std::to_string(wire_query.size()) +
                               " bytes");
  }
  // The id the reply must echo (RFC 1035 header bytes 0-1).
  const bool have_id = wire_query.size() >= 2;
  const uint16_t query_id =
      have_id ? static_cast<uint16_t>(wire_query[0] << 8 | wire_query[1]) : 0;

  // One fixed deadline for the whole exchange. Every EINTR (routine under
  // the CLI's escalating signal handlers: the first SIGINT must flush
  // checkpoints, not poison in-flight measurements) and every discarded
  // stray datagram re-enters the loop with the *remaining* budget.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.timeout_ms);
  std::vector<uint8_t> buffer(
      static_cast<size_t>(options_.max_response_bytes));
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return util::TimeoutError("no reply from " + server.ToString());
    }
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return util::InternalError(Errno("poll"));
    }
    if (ready == 0) {
      return util::TimeoutError("no reply from " + server.ToString());
    }

    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    ssize_t got = ::recvfrom(fd, buffer.data(), buffer.size(), 0,
                             reinterpret_cast<sockaddr*>(&from), &from_len);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return util::UnavailableError(Errno("recvfrom"));
    }
    // Anti-spoofing: the datagram must come from the queried server's
    // address AND port, and echo the query's transaction id. Anything else
    // is off-path noise (or an active spoofer) — drop it and keep waiting.
    if (!SameEndpoint(from, dest)) continue;
    if (have_id &&
        (got < 2 ||
         static_cast<uint16_t>(buffer[0] << 8 | buffer[1]) != query_id)) {
      continue;
    }
    buffer.resize(static_cast<size_t>(got));
    return buffer;
  }
}

UdpServer::~UdpServer() { Stop(); }

util::Status UdpServer::Start(geo::IPv4 bind_address, uint16_t port,
                              Handler handler) {
  GOVDNS_CHECK(handler != nullptr);
  if (running_.load()) return util::FailedPreconditionError("already running");

  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return util::InternalError(Errno("socket"));

  sockaddr_in addr = MakeSockaddr(bind_address, port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd_);
    fd_ = -1;
    return util::UnavailableError(Errno("bind"));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    ::close(fd_);
    fd_ = -1;
    return util::InternalError(Errno("getsockname"));
  }
  port_ = ntohs(bound.sin_port);

  handler_ = std::move(handler);
  running_.store(true);
  thread_ = std::thread([this] { ServeLoop(); });
  return util::Status::Ok();
}

void UdpServer::ServeLoop() {
  std::vector<uint8_t> buffer(65536);
  while (running_.load()) {
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout: re-check running_
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    ssize_t got = ::recvfrom(fd_, buffer.data(), buffer.size(), 0,
                             reinterpret_cast<sockaddr*>(&from), &from_len);
    if (got <= 0) continue;
    ++requests_;
    std::vector<uint8_t> request(buffer.begin(), buffer.begin() + got);
    std::vector<uint8_t> reply = handler_(request);
    if (reply.empty()) continue;  // a handler may choose silence
    (void)::sendto(fd_, reply.data(), reply.size(), 0,
                   reinterpret_cast<const sockaddr*>(&from), from_len);
  }
}

void UdpServer::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;  // restore the "0 before Start" contract across restarts
}

}  // namespace govdns::netio
