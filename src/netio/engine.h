// Asynchronous DNS query engine (the ZDNS model, PAPERS.md).
//
// The synchronous UdpTransport holds one thread hostage per in-flight
// query: at the paper's scale (~190k domains, several queries each) the
// active phase is bounded by round-trip latency, not by bandwidth or CPU.
// QueryEngine inverts that: callers *submit* wire queries into a bounded
// in-flight window (default 1024) and collect completions later, while a
// single event-loop thread multiplexes every datagram over a small pool of
// shared UDP sockets. The engine owns the per-query hardening the real
// network demands — its own transaction-id space to disambiguate concurrent
// queries on shared sockets, strict source address:port validation,
// deadline accounting, optional per-nameserver token-bucket pacing, and a
// TCP retry when a reply arrives truncated (TC=1).
//
// The engine is itself a dns::QueryTransport, so the resolver and the whole
// core::Study drive it unchanged: Exchange = Submit + Wait. Concurrency
// comes from many resolver lanes sharing one engine — each lane parks
// cheaply in Wait while the loop keeps the window full.
//
// Two modes share the interface:
//  * Real mode (default ctor): actual sockets, wall-clock deadlines.
//  * Wrapped mode (ctor taking a base transport): every exchange is
//    delegated to the base — typically simnet::SimNetwork — executed
//    inline on the submitting thread so the simulator's thread-local chaos
//    contexts, and therefore byte-identical study reports, are preserved.
//    What remains of the engine is the window bookkeeping, deterministic
//    token buckets charged to the base's logical clock, and the optional
//    stream retry for truncated replies.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dns/transport.h"
#include "geo/ipv4.h"
#include "util/status.h"

namespace govdns::obs {
class MetricsRegistry;
}

namespace govdns::netio {

// Aggregate engine counters (all modes). Diagnostic by nature: counts
// depend on network behaviour and scheduling, never on report content.
struct EngineStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t timeouts = 0;
  uint64_t truncated = 0;       // replies that arrived with TC=1
  uint64_t tcp_fallbacks = 0;   // truncated replies recovered over a stream
  uint64_t wrong_source = 0;    // datagrams from an unexpected address:port
  uint64_t wrong_id = 0;        // datagrams with no matching in-flight id
  uint64_t ratelimit_deferred = 0;  // sends delayed by a token bucket
  uint64_t send_errors = 0;
  uint64_t max_inflight = 0;    // high-water mark of the window
};

class QueryEngine : public dns::QueryTransport {
 public:
  struct Options {
    uint16_t port = 53;          // destination port for every exchange
    int socket_pool = 8;         // shared UDP sockets (real mode)
    int max_inflight = 1024;     // bounded submission window
    int timeout_ms = 2000;       // per-query deadline
    int max_response_bytes = 4096;
    // Real mode: re-ask truncated (TC=1) replies over TCP.
    bool tcp_fallback = true;
    // Wrapped mode: re-ask truncated replies through the base transport's
    // stream path. Off by default so an engine-fronted simulation stays
    // byte-identical with the bare transport.
    bool stream_fallback = false;
    // Per-nameserver token-bucket pacing: sustained queries/sec per server
    // address (0 = unlimited) with `per_server_burst` of headroom
    // (0 = derive as max(1, qps)). In wrapped mode the buckets live per
    // chaos context and charge waits to the base transport's logical
    // clock, so pacing is deterministic and hermetic per unit of work.
    double per_server_qps = 0.0;
    int per_server_burst = 0;
  };

  // A submitted query; redeemable exactly once via Wait.
  using Token = uint64_t;

  // Real-socket engine.
  explicit QueryEngine(Options options);
  // Wrapped engine: delegates I/O to `base` (not owned, must outlive).
  QueryEngine(dns::QueryTransport* base, Options options);
  ~QueryEngine() override;

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Enqueues one wire query to `server`. Blocks only while the in-flight
  // window is full. Thread-safe.
  Token Submit(geo::IPv4 server, std::vector<uint8_t> wire_query);
  // Blocks until the query behind `token` completes; at most once per token.
  util::StatusOr<std::vector<uint8_t>> Wait(Token token);

  // dns::QueryTransport — Exchange is Submit+Wait in real mode, an inline
  // delegated call in wrapped mode.
  util::StatusOr<std::vector<uint8_t>> Exchange(
      geo::IPv4 server, const std::vector<uint8_t>& wire_query) override;
  util::StatusOr<std::vector<uint8_t>> ExchangeStream(
      geo::IPv4 server, const std::vector<uint8_t>& wire_query) override;
  uint64_t now_ms() const override;
  void Delay(uint32_t ms) override;
  void PushChaosContext(uint64_t tag) override;
  void PopChaosContext() override;

  EngineStats stats() const;
  // Exports the counters as diagnostic `engine.*` gauges.
  void PublishStats(obs::MetricsRegistry& registry) const;

  const Options& options() const { return options_; }
  bool wrapped() const { return base_ != nullptr; }

 private:
  struct Submission {
    Token token = 0;
    geo::IPv4 server;
    std::vector<uint8_t> wire;
  };
  // One in-flight real-mode query, owned by the event loop.
  struct Pending {
    Token token = 0;
    geo::IPv4 server;
    uint16_t original_id = 0;
    uint16_t engine_id = 0;
    int sock = -1;               // index into sockets_
    uint64_t deadline_ms = 0;    // engine clock
    std::vector<uint8_t> wire;   // engine-id-rewritten query
  };
  struct TokenBucket {
    double tokens = 0.0;
    uint64_t last_ms = 0;
  };
  // A truncated reply being retried over TCP by a fallback worker.
  struct FallbackTask {
    Token token = 0;
    geo::IPv4 server;
    uint64_t deadline_ms = 0;
    std::vector<uint8_t> wire;           // original-id query
    std::vector<uint8_t> truncated_reply;  // served if TCP fails
  };

  struct AtomicStats {
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> truncated{0};
    std::atomic<uint64_t> tcp_fallbacks{0};
    std::atomic<uint64_t> wrong_source{0};
    std::atomic<uint64_t> wrong_id{0};
    std::atomic<uint64_t> ratelimit_deferred{0};
    std::atomic<uint64_t> send_errors{0};
    std::atomic<uint64_t> max_inflight{0};
  };

  // --- shared ---
  util::StatusOr<std::vector<uint8_t>> DelegatedExchange(
      geo::IPv4 server, const std::vector<uint8_t>& wire_query);
  void Complete(Token token, util::StatusOr<std::vector<uint8_t>> result);
  void NoteInflightHighWater(uint64_t inflight);

  // --- real mode ---
  void EventLoop();
  void FallbackLoop();
  void WakeLoop();
  // Loop thread only:
  void Dispatch(Submission s);
  void SendNow(Submission s, uint64_t now);
  void HandleReadable(int sock_index);
  void ExpireDeadlines(uint64_t now);
  void ReleaseDeferred(uint64_t now);
  int LoopPollTimeout(uint64_t now) const;

  Options options_;
  dns::QueryTransport* base_ = nullptr;
  AtomicStats stats_;

  // Submission window / completion rendezvous (all modes).
  mutable std::mutex mu_;
  std::condition_variable window_cv_;   // space in the window
  std::condition_variable complete_cv_;  // a completion landed
  std::atomic<bool> shutdown_{false};
  Token next_token_ = 1;
  uint64_t inflight_ = 0;  // queued + in-flight + fallback, not yet Waited
  std::deque<Submission> submit_queue_;
  std::unordered_map<Token, util::StatusOr<std::vector<uint8_t>>> completions_;

  // Real-mode plumbing.
  std::vector<int> sockets_;
  int wake_pipe_[2] = {-1, -1};
  std::thread loop_thread_;
  std::chrono::steady_clock::time_point epoch_;

  // Event-loop-owned state (no lock needed; loop thread only).
  std::unordered_map<Token, Pending> pendings_;
  std::vector<std::unordered_map<uint16_t, Token>> id_maps_;  // per socket
  std::vector<uint16_t> next_engine_id_;                      // per socket
  // (deadline, token) min-heap for timeouts.
  using DeadlineEntry = std::pair<uint64_t, Token>;
  std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                      std::greater<DeadlineEntry>>
      deadlines_;
  // Rate-limited submissions parked until their bucket refills.
  using DeferredEntry = std::pair<uint64_t, Token>;
  std::priority_queue<DeferredEntry, std::vector<DeferredEntry>,
                      std::greater<DeferredEntry>>
      deferred_;
  std::unordered_map<Token, Submission> deferred_submissions_;
  std::unordered_map<uint32_t, TokenBucket> buckets_;  // by server bits

  // TCP fallback workers.
  std::mutex fallback_mu_;
  std::condition_variable fallback_cv_;
  std::deque<FallbackTask> fallback_queue_;
  std::vector<std::thread> fallback_threads_;

  // Wrapped-mode deterministic pacing: per-thread, per-context buckets.
  struct WrappedPacing {
    std::vector<uint64_t> tag_stack;
    // (context tag, server) -> bucket; entries die with their context.
    std::unordered_map<uint64_t, std::unordered_map<uint32_t, TokenBucket>>
        buckets_by_tag;
  };
  static thread_local std::unordered_map<const QueryEngine*, WrappedPacing>
      wrapped_pacing_;
};

}  // namespace govdns::netio
