#include "netio/engine.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>

#include "netio/sockaddr.h"
#include "netio/tcp.h"
#include "obs/metrics.h"

namespace govdns::netio {

namespace {

constexpr char kShutdownMsg[] = "engine shutdown";

bool IsTruncated(const std::vector<uint8_t>& reply) {
  return reply.size() >= 12 && (reply[2] & 0x02) != 0;
}

uint16_t WireId(const std::vector<uint8_t>& wire) {
  return static_cast<uint16_t>(wire[0] << 8 | wire[1]);
}

void SetWireId(std::vector<uint8_t>& wire, uint16_t id) {
  wire[0] = static_cast<uint8_t>(id >> 8);
  wire[1] = static_cast<uint8_t>(id & 0xFF);
}

}  // namespace

thread_local std::unordered_map<const QueryEngine*, QueryEngine::WrappedPacing>
    QueryEngine::wrapped_pacing_;

QueryEngine::QueryEngine(Options options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  options_.socket_pool = std::max(1, options_.socket_pool);
  options_.max_inflight = std::max(1, options_.max_inflight);
  sockets_.resize(static_cast<size_t>(options_.socket_pool), -1);
  id_maps_.resize(sockets_.size());
  next_engine_id_.resize(sockets_.size(), 0);
  for (size_t i = 0; i < sockets_.size(); ++i) {
    int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
    GOVDNS_CHECK(fd >= 0);
    // A deep receive buffer rides out completion bursts: with ~1k queries
    // in flight a few hundred replies can land between two poll rounds.
    int rcvbuf = 1 << 20;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockets_[i] = fd;
    // Stagger id spaces so cross-socket collisions of fresh ids are rare
    // (collisions are handled, staggering just keeps the maps tidy).
    next_engine_id_[i] = static_cast<uint16_t>(i * 8191u);
  }
  GOVDNS_CHECK(::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) == 0);
  loop_thread_ = std::thread([this] { EventLoop(); });
  if (options_.tcp_fallback) {
    for (int i = 0; i < 2; ++i) {
      fallback_threads_.emplace_back([this] { FallbackLoop(); });
    }
  }
}

QueryEngine::QueryEngine(dns::QueryTransport* base, Options options)
    : options_(options), base_(base) {
  GOVDNS_CHECK(base_ != nullptr);
  options_.max_inflight = std::max(1, options_.max_inflight);
}

QueryEngine::~QueryEngine() {
  {
    std::lock_guard lock(mu_);
    shutdown_.store(true);
  }
  window_cv_.notify_all();
  if (base_ != nullptr) return;  // wrapped mode owns no threads
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    // Pairs with the fallback workers' wait: the flag flip cannot slip
    // between their predicate check and their sleep.
    std::lock_guard lock(fallback_mu_);
  }
  fallback_cv_.notify_all();
  for (std::thread& t : fallback_threads_) {
    if (t.joinable()) t.join();
  }
  for (int fd : sockets_) {
    if (fd >= 0) ::close(fd);
  }
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

uint64_t QueryEngine::now_ms() const {
  if (base_ != nullptr) return base_->now_ms();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void QueryEngine::Delay(uint32_t ms) {
  if (base_ != nullptr) {
    base_->Delay(ms);
    return;
  }
  // Real pacing: backoff against live infrastructure actually waits.
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void QueryEngine::PushChaosContext(uint64_t tag) {
  if (base_ == nullptr) return;  // real network: contexts are meaningless
  base_->PushChaosContext(tag);
  wrapped_pacing_[this].tag_stack.push_back(tag);
}

void QueryEngine::PopChaosContext() {
  if (base_ == nullptr) return;
  WrappedPacing& pacing = wrapped_pacing_[this];
  GOVDNS_CHECK(!pacing.tag_stack.empty());
  // The context's token buckets die with it: pacing is hermetic per unit
  // of work, which is what keeps it deterministic under any thread count.
  pacing.buckets_by_tag.erase(pacing.tag_stack.back());
  pacing.tag_stack.pop_back();
  base_->PopChaosContext();
}

void QueryEngine::NoteInflightHighWater(uint64_t inflight) {
  uint64_t seen = stats_.max_inflight.load(std::memory_order_relaxed);
  while (inflight > seen &&
         !stats_.max_inflight.compare_exchange_weak(
             seen, inflight, std::memory_order_relaxed)) {
  }
}

QueryEngine::Token QueryEngine::Submit(geo::IPv4 server,
                                       std::vector<uint8_t> wire_query) {
  if (base_ != nullptr) {
    // Wrapped mode executes inline on the submitting thread — the
    // simulator's chaos contexts are thread-local, so the exchange must
    // not hop threads. The window is trivially bounded by the lane count.
    Token token;
    {
      std::lock_guard lock(mu_);
      token = next_token_++;
      ++inflight_;
      NoteInflightHighWater(inflight_);
    }
    stats_.submitted.fetch_add(1, std::memory_order_relaxed);
    Complete(token, DelegatedExchange(server, wire_query));
    return token;
  }

  Token token;
  {
    std::unique_lock lock(mu_);
    window_cv_.wait(lock, [&] {
      return shutdown_ ||
             inflight_ < static_cast<uint64_t>(options_.max_inflight);
    });
    token = next_token_++;
    if (shutdown_) {
      completions_.emplace(token, util::UnavailableError(kShutdownMsg));
      complete_cv_.notify_all();
      return token;
    }
    ++inflight_;
    NoteInflightHighWater(inflight_);
    submit_queue_.push_back(Submission{token, server, std::move(wire_query)});
  }
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  WakeLoop();
  return token;
}

util::StatusOr<std::vector<uint8_t>> QueryEngine::Wait(Token token) {
  std::unique_lock lock(mu_);
  complete_cv_.wait(lock, [&] { return completions_.contains(token); });
  auto it = completions_.find(token);
  util::StatusOr<std::vector<uint8_t>> result = std::move(it->second);
  completions_.erase(it);
  return result;
}

util::StatusOr<std::vector<uint8_t>> QueryEngine::Exchange(
    geo::IPv4 server, const std::vector<uint8_t>& wire_query) {
  if (base_ != nullptr) {
    // Inline fast path: no token round-trip for the common resolver call.
    stats_.submitted.fetch_add(1, std::memory_order_relaxed);
    auto result = DelegatedExchange(server, wire_query);
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
    return result;
  }
  return Wait(Submit(server, wire_query));
}

util::StatusOr<std::vector<uint8_t>> QueryEngine::ExchangeStream(
    geo::IPv4 server, const std::vector<uint8_t>& wire_query) {
  if (base_ != nullptr) return base_->ExchangeStream(server, wire_query);
  return TcpExchange(server, options_.port, wire_query, options_.timeout_ms,
                     options_.max_response_bytes);
}

util::StatusOr<std::vector<uint8_t>> QueryEngine::DelegatedExchange(
    geo::IPv4 server, const std::vector<uint8_t>& wire_query) {
  if (options_.per_server_qps > 0.0) {
    WrappedPacing& pacing = wrapped_pacing_[this];
    const uint64_t tag =
        pacing.tag_stack.empty() ? 0 : pacing.tag_stack.back();
    TokenBucket& bucket = pacing.buckets_by_tag[tag][server.bits()];
    const double burst = options_.per_server_burst > 0
                             ? options_.per_server_burst
                             : std::max(1.0, options_.per_server_qps);
    uint64_t now = base_->now_ms();
    if (bucket.last_ms == 0 && bucket.tokens == 0.0) {
      bucket.tokens = burst;  // fresh bucket starts full
    } else {
      bucket.tokens = std::min(
          burst, bucket.tokens + static_cast<double>(now - bucket.last_ms) *
                                     options_.per_server_qps / 1000.0);
    }
    bucket.last_ms = now;
    if (bucket.tokens >= 1.0) {
      bucket.tokens -= 1.0;
    } else {
      // Deterministic pacing: charge the wait to the base transport's
      // logical clock so the delay is a pure function of the query
      // sequence within this context.
      const uint64_t wait_ms = static_cast<uint64_t>(std::ceil(
          (1.0 - bucket.tokens) * 1000.0 / options_.per_server_qps));
      base_->Delay(static_cast<uint32_t>(wait_ms));
      stats_.ratelimit_deferred.fetch_add(1, std::memory_order_relaxed);
      bucket.last_ms = base_->now_ms();
      bucket.tokens = 0.0;  // the refill was exactly the token just spent
    }
  }

  auto result = base_->Exchange(server, wire_query);
  if (result.ok() && IsTruncated(*result)) {
    stats_.truncated.fetch_add(1, std::memory_order_relaxed);
    if (options_.stream_fallback) {
      auto full = base_->ExchangeStream(server, wire_query);
      if (full.ok()) {
        stats_.tcp_fallbacks.fetch_add(1, std::memory_order_relaxed);
        return full;
      }
      // The stream retry failed; the truncated datagram is still the
      // best evidence we have — surface it as the sync path would.
    }
  }
  return result;
}

void QueryEngine::Complete(Token token,
                           util::StatusOr<std::vector<uint8_t>> result) {
  {
    std::lock_guard lock(mu_);
    completions_.emplace(token, std::move(result));
    GOVDNS_CHECK(inflight_ > 0);
    --inflight_;
  }
  stats_.completed.fetch_add(1, std::memory_order_relaxed);
  window_cv_.notify_all();
  complete_cv_.notify_all();
}

void QueryEngine::WakeLoop() {
  uint8_t byte = 1;
  ssize_t n;
  do {
    n = ::write(wake_pipe_[1], &byte, 1);
  } while (n < 0 && errno == EINTR);
  // EAGAIN means the pipe already holds a wake-up; that is enough.
}

int QueryEngine::LoopPollTimeout(uint64_t now) const {
  uint64_t next = now + 100;  // idle heartbeat: re-check shutdown
  if (!deadlines_.empty()) next = std::min(next, deadlines_.top().first);
  if (!deferred_.empty()) next = std::min(next, deferred_.top().first);
  return next > now ? static_cast<int>(next - now) : 0;
}

void QueryEngine::EventLoop() {
  std::vector<pollfd> pfds;
  for (;;) {
    uint64_t now = now_ms();
    ReleaseDeferred(now);
    ExpireDeadlines(now);

    std::deque<Submission> batch;
    bool shutting;
    {
      std::lock_guard lock(mu_);
      batch.swap(submit_queue_);
      shutting = shutdown_;
    }
    for (Submission& s : batch) Dispatch(std::move(s));

    if (shutting) {
      // Fail everything still in flight; Submit already rejects new work.
      std::vector<Token> open;
      open.reserve(pendings_.size() + deferred_submissions_.size());
      for (const auto& [token, pending] : pendings_) open.push_back(token);
      for (const auto& [token, sub] : deferred_submissions_)
        open.push_back(token);
      pendings_.clear();
      deferred_submissions_.clear();
      for (Token token : open) {
        Complete(token, util::UnavailableError(kShutdownMsg));
      }
      return;
    }

    pfds.clear();
    pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (int fd : sockets_) pfds.push_back(pollfd{fd, POLLIN, 0});
    int ready = ::poll(pfds.data(), pfds.size(), LoopPollTimeout(now_ms()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      GOVDNS_CHECK(false);  // poll on owned fds cannot fail otherwise
    }
    if (pfds[0].revents & POLLIN) {
      uint8_t drain[256];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    for (size_t i = 0; i < sockets_.size(); ++i) {
      if (pfds[i + 1].revents & POLLIN) {
        HandleReadable(static_cast<int>(i));
      }
    }
  }
}

void QueryEngine::Dispatch(Submission s) {
  if (s.wire.size() < 12) {
    Complete(s.token,
             util::InvalidArgumentError("wire query shorter than a DNS header"));
    return;
  }
  const uint64_t now = now_ms();
  if (options_.per_server_qps > 0.0) {
    TokenBucket& bucket = buckets_[s.server.bits()];
    const double burst = options_.per_server_burst > 0
                             ? options_.per_server_burst
                             : std::max(1.0, options_.per_server_qps);
    if (bucket.last_ms == 0 && bucket.tokens == 0.0) {
      bucket.tokens = burst;
    } else {
      bucket.tokens = std::min(
          burst, bucket.tokens + static_cast<double>(now - bucket.last_ms) *
                                     options_.per_server_qps / 1000.0);
    }
    bucket.last_ms = now;
    if (bucket.tokens < 1.0) {
      // Park until the bucket refills; the loop releases in ready order.
      const uint64_t ready =
          now + static_cast<uint64_t>(std::ceil(
                    (1.0 - bucket.tokens) * 1000.0 / options_.per_server_qps));
      // Reserve the token now so concurrent submissions to the same server
      // queue behind this one instead of all releasing at once.
      bucket.tokens -= 1.0;
      stats_.ratelimit_deferred.fetch_add(1, std::memory_order_relaxed);
      deferred_.push({ready, s.token});
      deferred_submissions_.emplace(s.token, std::move(s));
      return;
    }
    bucket.tokens -= 1.0;
  }
  SendNow(std::move(s), now);
}

void QueryEngine::ReleaseDeferred(uint64_t now) {
  while (!deferred_.empty() && deferred_.top().first <= now) {
    Token token = deferred_.top().second;
    deferred_.pop();
    auto it = deferred_submissions_.find(token);
    if (it == deferred_submissions_.end()) continue;
    Submission s = std::move(it->second);
    deferred_submissions_.erase(it);
    SendNow(std::move(s), now);
  }
}

void QueryEngine::SendNow(Submission s, uint64_t now) {
  const int sock = static_cast<int>(s.token % sockets_.size());
  auto& id_map = id_maps_[sock];
  uint16_t engine_id = next_engine_id_[sock]++;
  while (id_map.contains(engine_id)) engine_id = next_engine_id_[sock]++;

  Pending pending;
  pending.token = s.token;
  pending.server = s.server;
  pending.original_id = WireId(s.wire);
  pending.engine_id = engine_id;
  pending.sock = sock;
  pending.deadline_ms = now + static_cast<uint64_t>(options_.timeout_ms);
  pending.wire = std::move(s.wire);
  SetWireId(pending.wire, engine_id);

  sockaddr_in dest = MakeSockaddr(s.server, options_.port);
  ssize_t sent;
  do {
    sent = ::sendto(sockets_[sock], pending.wire.data(), pending.wire.size(),
                    0, reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  } while (sent < 0 && errno == EINTR);
  if (sent < 0) {
    stats_.send_errors.fetch_add(1, std::memory_order_relaxed);
    Complete(pending.token, util::UnavailableError(Errno("sendto")));
    return;
  }
  if (static_cast<size_t>(sent) != pending.wire.size()) {
    stats_.send_errors.fetch_add(1, std::memory_order_relaxed);
    Complete(pending.token, util::InternalError("short sendto"));
    return;
  }

  id_map.emplace(engine_id, pending.token);
  deadlines_.push({pending.deadline_ms, pending.token});
  pendings_.emplace(pending.token, std::move(pending));
}

void QueryEngine::HandleReadable(int sock_index) {
  std::vector<uint8_t> buffer(
      static_cast<size_t>(options_.max_response_bytes));
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    ssize_t got =
        ::recvfrom(sockets_[sock_index], buffer.data(), buffer.size(), 0,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (got < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained
    }
    if (got < 2) {
      stats_.wrong_id.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const uint16_t engine_id =
        static_cast<uint16_t>(buffer[0] << 8 | buffer[1]);
    auto& id_map = id_maps_[sock_index];
    auto id_it = id_map.find(engine_id);
    if (id_it == id_map.end()) {
      // Late reply after timeout, or an id a spoofer guessed wrong.
      stats_.wrong_id.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto pending_it = pendings_.find(id_it->second);
    GOVDNS_CHECK(pending_it != pendings_.end());
    Pending& pending = pending_it->second;
    sockaddr_in expected = MakeSockaddr(pending.server, options_.port);
    if (!SameEndpoint(from, expected)) {
      // Right id, wrong endpoint: off-path spoof. The genuine reply may
      // still arrive — keep the query pending.
      stats_.wrong_source.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    std::vector<uint8_t> reply(buffer.begin(), buffer.begin() + got);
    SetWireId(reply, pending.original_id);  // restore the caller's id space
    Pending done = std::move(pending);
    pendings_.erase(pending_it);
    id_map.erase(id_it);

    if (IsTruncated(reply)) {
      stats_.truncated.fetch_add(1, std::memory_order_relaxed);
      if (options_.tcp_fallback) {
        FallbackTask task;
        task.token = done.token;
        task.server = done.server;
        task.deadline_ms = done.deadline_ms;
        task.wire = std::move(done.wire);
        SetWireId(task.wire, done.original_id);
        task.truncated_reply = std::move(reply);
        {
          std::lock_guard lock(fallback_mu_);
          fallback_queue_.push_back(std::move(task));
        }
        fallback_cv_.notify_one();
        continue;  // completes when the stream retry resolves
      }
    }
    Complete(done.token, std::move(reply));
  }
}

void QueryEngine::ExpireDeadlines(uint64_t now) {
  while (!deadlines_.empty() && deadlines_.top().first <= now) {
    Token token = deadlines_.top().second;
    deadlines_.pop();
    auto it = pendings_.find(token);
    if (it == pendings_.end()) continue;  // already completed
    id_maps_[it->second.sock].erase(it->second.engine_id);
    std::string server = it->second.server.ToString();
    pendings_.erase(it);
    stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
    Complete(token, util::TimeoutError("no reply from " + server));
  }
}

void QueryEngine::FallbackLoop() {
  for (;;) {
    FallbackTask task;
    {
      std::unique_lock lock(fallback_mu_);
      fallback_cv_.wait(lock, [&] {
        return !fallback_queue_.empty() || shutdown_.load();
      });
      if (fallback_queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(fallback_queue_.front());
      fallback_queue_.pop_front();
    }
    const uint64_t now = now_ms();
    util::StatusOr<std::vector<uint8_t>> full =
        util::TimeoutError("no budget left for tcp retry");
    if (task.deadline_ms > now) {
      full = TcpExchange(task.server, options_.port, task.wire,
                         static_cast<int>(task.deadline_ms - now),
                         options_.max_response_bytes);
    }
    if (full.ok() && full->size() >= 2 && WireId(*full) == WireId(task.wire)) {
      stats_.tcp_fallbacks.fetch_add(1, std::memory_order_relaxed);
      Complete(task.token, std::move(full));
    } else {
      // The stream retry failed; the truncated datagram is still evidence
      // the server answered — surface it just as the sync path would.
      Complete(task.token, std::move(task.truncated_reply));
    }
  }
}

EngineStats QueryEngine::stats() const {
  EngineStats s;
  s.submitted = stats_.submitted.load(std::memory_order_relaxed);
  s.completed = stats_.completed.load(std::memory_order_relaxed);
  s.timeouts = stats_.timeouts.load(std::memory_order_relaxed);
  s.truncated = stats_.truncated.load(std::memory_order_relaxed);
  s.tcp_fallbacks = stats_.tcp_fallbacks.load(std::memory_order_relaxed);
  s.wrong_source = stats_.wrong_source.load(std::memory_order_relaxed);
  s.wrong_id = stats_.wrong_id.load(std::memory_order_relaxed);
  s.ratelimit_deferred =
      stats_.ratelimit_deferred.load(std::memory_order_relaxed);
  s.send_errors = stats_.send_errors.load(std::memory_order_relaxed);
  s.max_inflight = stats_.max_inflight.load(std::memory_order_relaxed);
  return s;
}

void QueryEngine::PublishStats(obs::MetricsRegistry& registry) const {
  const EngineStats s = stats();
  auto gauge = [&](std::string_view name, uint64_t value) {
    registry.SetGauge(name, static_cast<int64_t>(value),
                      obs::Determinism::kDiagnostic);
  };
  gauge("engine.submitted", s.submitted);
  gauge("engine.completed", s.completed);
  gauge("engine.timeouts", s.timeouts);
  gauge("engine.truncated", s.truncated);
  gauge("engine.tcp_fallbacks", s.tcp_fallbacks);
  gauge("engine.wrong_source", s.wrong_source);
  gauge("engine.wrong_id", s.wrong_id);
  gauge("engine.ratelimit_deferred", s.ratelimit_deferred);
  gauge("engine.send_errors", s.send_errors);
  gauge("engine.max_inflight", s.max_inflight);
}

}  // namespace govdns::netio
