#include "netio/tcp.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <chrono>

#include "dns/wire.h"
#include "netio/sockaddr.h"

namespace govdns::netio {

namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

// Polls `fd` for `events` until the deadline, retrying EINTR. Returns
// ok when ready, kTimeout at the deadline, kInternal on poll failure.
util::Status PollUntil(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    int remaining = RemainingMs(deadline);
    if (remaining <= 0) return util::TimeoutError("tcp exchange deadline");
    pollfd pfd{fd, events, 0};
    int ready = ::poll(&pfd, 1, remaining);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return util::InternalError(Errno("poll"));
    }
    if (ready == 0) return util::TimeoutError("tcp exchange deadline");
    return util::Status::Ok();
  }
}

}  // namespace

util::StatusOr<std::vector<uint8_t>> TcpExchange(
    geo::IPv4 server, uint16_t port, const std::vector<uint8_t>& wire_query,
    int timeout_ms, int max_response_bytes) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return util::InternalError(Errno("socket"));
  struct Closer {
    int fd;
    ~Closer() { ::close(fd); }
  } closer{fd};

  // Non-blocking connect bounded by the exchange deadline.
  sockaddr_in dest = MakeSockaddr(server, port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno != EINPROGRESS) return util::UnavailableError(Errno("connect"));
    GOVDNS_RETURN_IF_ERROR(PollUntil(fd, POLLOUT, deadline));
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) {
      return util::InternalError(Errno("getsockopt"));
    }
    if (err != 0) {
      return util::UnavailableError(std::string("connect: ") +
                                    std::strerror(err));
    }
  }

  // Send the framed query, honouring partial writes and EINTR.
  std::vector<uint8_t> framed = dns::FrameTcp(wire_query);
  size_t off = 0;
  while (off < framed.size()) {
    ssize_t sent = ::send(fd, framed.data() + off, framed.size() - off,
                          MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        GOVDNS_RETURN_IF_ERROR(PollUntil(fd, POLLOUT, deadline));
        continue;
      }
      return util::UnavailableError(Errno("send"));
    }
    off += static_cast<size_t>(sent);
  }

  // Read until one complete frame is buffered.
  std::vector<uint8_t> buffer;
  buffer.reserve(512);
  const size_t cap = static_cast<size_t>(max_response_bytes) + 2;
  for (;;) {
    size_t consumed = 0;
    if (auto reply = dns::UnframeTcp(buffer.data(), buffer.size(), &consumed)) {
      return *std::move(reply);
    }
    if (buffer.size() >= cap) {
      return util::DataLossError("tcp reply exceeds response cap");
    }
    GOVDNS_RETURN_IF_ERROR(PollUntil(fd, POLLIN, deadline));
    uint8_t chunk[4096];
    ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return util::UnavailableError(Errno("recv"));
    }
    if (got == 0) {
      return util::UnavailableError("connection closed before full reply");
    }
    buffer.insert(buffer.end(), chunk, chunk + got);
  }
}

TcpServer::~TcpServer() { Stop(); }

util::Status TcpServer::Start(geo::IPv4 bind_address, uint16_t port,
                              Handler handler) {
  GOVDNS_CHECK(handler != nullptr);
  if (running_.load()) return util::FailedPreconditionError("already running");

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return util::InternalError(Errno("socket"));
  int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = MakeSockaddr(bind_address, port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd_);
    fd_ = -1;
    return util::UnavailableError(Errno("bind"));
  }
  if (::listen(fd_, 16) < 0) {
    ::close(fd_);
    fd_ = -1;
    return util::InternalError(Errno("listen"));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    ::close(fd_);
    fd_ = -1;
    return util::InternalError(Errno("getsockname"));
  }
  port_ = ntohs(bound.sin_port);

  handler_ = std::move(handler);
  running_.store(true);
  thread_ = std::thread([this] { ServeLoop(); });
  return util::Status::Ok();
}

void TcpServer::ServeLoop() {
  while (running_.load()) {
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout/EINTR: re-check running_
    int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) continue;
    ServeConnection(conn);
    ::close(conn);
  }
}

void TcpServer::ServeConnection(int conn_fd) {
  // Answer framed queries until the peer closes or errs. Connections are
  // served one at a time — ample for the fallback path this server exists
  // to test.
  std::vector<uint8_t> buffer;
  uint8_t chunk[4096];
  while (running_.load()) {
    size_t consumed = 0;
    if (auto query = dns::UnframeTcp(buffer.data(), buffer.size(),
                                     &consumed)) {
      buffer.erase(buffer.begin(), buffer.begin() + consumed);
      ++requests_;
      std::vector<uint8_t> reply = handler_(*query);
      if (reply.empty()) continue;  // a handler may choose silence
      std::vector<uint8_t> framed = dns::FrameTcp(reply);
      size_t off = 0;
      while (off < framed.size()) {
        ssize_t sent = ::send(conn_fd, framed.data() + off,
                              framed.size() - off, MSG_NOSIGNAL);
        if (sent < 0 && errno == EINTR) continue;
        if (sent <= 0) return;
        off += static_cast<size_t>(sent);
      }
      continue;
    }
    pollfd pfd{conn_fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) return;
    if (ready <= 0) continue;  // re-check running_
    ssize_t got = ::recv(conn_fd, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return;
    buffer.insert(buffer.end(), chunk, chunk + got);
  }
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;  // same "0 before Start" contract as UdpServer
}

}  // namespace govdns::netio
