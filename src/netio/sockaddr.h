// Shared socket-address helpers for the netio backends (internal header).
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "geo/ipv4.h"

namespace govdns::netio {

inline sockaddr_in MakeSockaddr(geo::IPv4 address, uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(address.bits());
  return sa;
}

// True when `from` is exactly the endpoint we queried: address AND port.
// Anything else — an off-path spoofer, cross-talk from another exchange on a
// reused port — must be discarded, never surfaced as the server's answer.
inline bool SameEndpoint(const sockaddr_in& from, const sockaddr_in& expected) {
  return from.sin_family == AF_INET &&
         from.sin_addr.s_addr == expected.sin_addr.s_addr &&
         from.sin_port == expected.sin_port;
}

inline std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace govdns::netio
