// Real-socket DNS transport.
//
// The measurement pipeline is written against dns::QueryTransport; this
// module provides the implementation that speaks actual UDP, plus a small
// UDP server that exposes a zone::AuthServer (or any handler) on a real
// socket. Together they let the same core::Study run against live
// infrastructure — and let the test suite exercise genuine packet I/O over
// loopback.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "dns/transport.h"
#include "geo/ipv4.h"
#include "util/status.h"

namespace govdns::netio {

// QueryTransport over UDP datagrams. One socket per Exchange call keeps the
// implementation trivially correct for sequential measurement (the paper's
// client is rate-limited anyway); no retries here — the resolver owns retry
// policy.
class UdpTransport : public dns::QueryTransport {
 public:
  struct Options {
    uint16_t port = 53;        // destination port for every exchange
    int timeout_ms = 2000;     // receive timeout
    int max_response_bytes = 4096;
  };

  explicit UdpTransport(Options options);
  UdpTransport() : UdpTransport(Options()) {}

  util::StatusOr<std::vector<uint8_t>> Exchange(
      geo::IPv4 server, const std::vector<uint8_t>& wire_query) override;

 private:
  Options options_;
};

// A UDP server bound to a local address, answering each datagram through a
// handler on a background thread. Intended for tests and for serving
// simulated zones to external resolvers.
class UdpServer {
 public:
  using Handler =
      std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)>;

  UdpServer() = default;
  ~UdpServer();

  UdpServer(const UdpServer&) = delete;
  UdpServer& operator=(const UdpServer&) = delete;

  // Binds `bind_address:port` (port 0 = ephemeral) and starts serving.
  util::Status Start(geo::IPv4 bind_address, uint16_t port, Handler handler);
  void Stop();

  bool running() const { return running_.load(); }
  // The bound port (resolved if 0 was requested). 0 before Start and again
  // after Stop.
  uint16_t port() const { return port_; }

  uint64_t requests_served() const { return requests_.load(); }

 private:
  void ServeLoop();

  int fd_ = -1;
  uint16_t port_ = 0;
  Handler handler_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
};

}  // namespace govdns::netio
