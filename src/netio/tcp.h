// Real-socket DNS-over-TCP (RFC 1035 §4.2.2).
//
// The measurement pipeline is UDP-first; TCP exists for one purpose — when
// a UDP reply comes back truncated (TC=1), the engine re-asks the query
// over a stream, where no 512-byte ceiling applies. This module provides
// the blocking client half used by that fallback plus a small framed TCP
// server so tests and benches can stand up a full-answer endpoint on
// loopback.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "geo/ipv4.h"
#include "util/status.h"

namespace govdns::netio {

// One framed query/response exchange over a fresh TCP connection: connect,
// send the length-prefixed query, read a complete length-prefixed reply,
// close. `timeout_ms` bounds the whole exchange (connect included); EINTR
// never fails it, only the deadline does. `wire_query` and the returned
// reply are bare DNS messages — framing is handled here.
util::StatusOr<std::vector<uint8_t>> TcpExchange(geo::IPv4 server,
                                                 uint16_t port,
                                                 const std::vector<uint8_t>&
                                                     wire_query,
                                                 int timeout_ms,
                                                 int max_response_bytes);

// A TCP server answering framed DNS queries through a handler, one
// connection at a time on a background thread. Mirrors UdpServer's contract:
// Start binds (port 0 = ephemeral), port() reports the bound port and
// returns to 0 after Stop().
class TcpServer {
 public:
  using Handler =
      std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)>;

  TcpServer() = default;
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  util::Status Start(geo::IPv4 bind_address, uint16_t port, Handler handler);
  void Stop();

  bool running() const { return running_.load(); }
  uint16_t port() const { return port_; }
  uint64_t requests_served() const { return requests_.load(); }

 private:
  void ServeLoop();
  void ServeConnection(int conn_fd);

  int fd_ = -1;
  uint16_t port_ = 0;
  Handler handler_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
};

}  // namespace govdns::netio
