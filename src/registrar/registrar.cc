#include "registrar/registrar.h"

#include <algorithm>
#include <cmath>

namespace govdns::registrar {

SimRegistrar::SimRegistrar(uint64_t seed) : seed_(seed) {}

void SimRegistrar::Register(const dns::Name& registered_domain) {
  registered_.insert(registered_domain);
}

void SimRegistrar::Release(const dns::Name& registered_domain) {
  registered_.erase(registered_domain);
}

bool SimRegistrar::IsRegistered(const dns::Name& registered_domain) const {
  return registered_.contains(registered_domain);
}

bool SimRegistrar::IsAvailable(const dns::Name& registered_domain) const {
  return !registered_.contains(registered_domain);
}

void SimRegistrar::SetPremiumPrice(const dns::Name& registered_domain,
                                   double usd) {
  GOVDNS_CHECK(usd >= 0.01);
  premium_prices_[registered_domain] = usd;
}

std::optional<double> SimRegistrar::PriceUsd(
    const dns::Name& registered_domain) const {
  if (!IsAvailable(registered_domain)) return std::nullopt;
  auto it = premium_prices_.find(registered_domain);
  if (it != premium_prices_.end()) return it->second;
  return RegistrationPriceUsd(seed_, registered_domain);
}

double RegistrationPriceUsd(uint64_t seed, const dns::Name& name) {
  util::Rng rng(util::HashString(name.ToString(), seed ^ 0x70726963ULL));
  const double bucket = rng.UniformDouble();
  double price;
  if (bucket < 0.08) {
    // Promotional first-year prices.
    price = 0.01 + rng.UniformDouble() * 4.99;
  } else if (bucket < 0.62) {
    // The standard .com-style price; the distribution's median sits here.
    price = 11.99;
  } else if (bucket < 0.90) {
    // Ordinary but pricier TLD/levels.
    price = 13.0 + rng.UniformDouble() * 47.0;
  } else {
    // Premium names: log-normal tail reaching the paper's 20k maximum.
    price = std::exp(4.5 + 1.7 * rng.Gaussian());
  }
  return std::clamp(std::round(price * 100.0) / 100.0, 0.01, 20000.0);
}

}  // namespace govdns::registrar
