#include "registrar/suffix.h"

namespace govdns::registrar {

void PublicSuffixList::AddSuffix(const dns::Name& suffix) {
  GOVDNS_CHECK(!suffix.IsRoot());
  suffixes_.insert(suffix);
}

bool PublicSuffixList::IsPublicSuffix(const dns::Name& name) const {
  return suffixes_.contains(name);
}

std::optional<dns::Name> PublicSuffixList::MatchingSuffix(
    const dns::Name& name) const {
  // Longest match wins: try the deepest suffix of `name` first.
  for (size_t count = name.LabelCount(); count >= 1; --count) {
    dns::Name candidate = name.Suffix(count);
    if (suffixes_.contains(candidate)) return candidate;
  }
  return std::nullopt;
}

std::optional<dns::Name> PublicSuffixList::RegisteredDomain(
    const dns::Name& name) const {
  auto suffix = MatchingSuffix(name);
  if (!suffix) return std::nullopt;
  if (suffix->LabelCount() == name.LabelCount()) return std::nullopt;
  return name.Suffix(suffix->LabelCount() + 1);
}

}  // namespace govdns::registrar
