// Public-suffix handling.
//
// The hijack-risk analyses need the *registered domain* of a nameserver
// hostname (pns11.cloudns.net -> cloudns.net) to ask a registrar whether it
// can be bought. A PublicSuffixList holds the suffixes under which
// registrations happen; worldgen populates it with the synthetic TLDs and
// second-level government/commercial suffixes it creates.
#pragma once

#include <optional>
#include <set>

#include "dns/name.h"

namespace govdns::registrar {

class PublicSuffixList {
 public:
  void AddSuffix(const dns::Name& suffix);

  bool IsPublicSuffix(const dns::Name& name) const;

  // The longest registered public suffix that `name` falls under, if any.
  std::optional<dns::Name> MatchingSuffix(const dns::Name& name) const;

  // The registrable domain: longest matching public suffix plus one label.
  // nullopt when the name *is* a public suffix, is above all suffixes, or
  // matches none (an unknown TLD).
  std::optional<dns::Name> RegisteredDomain(const dns::Name& name) const;

  size_t size() const { return suffixes_.size(); }

 private:
  std::set<dns::Name> suffixes_;
};

}  // namespace govdns::registrar
