// Registrar client: availability checks and registration pricing.
//
// Stands in for the paper's GoDaddy availability/price lookups (§IV-C/D).
// SimRegistrar keeps the set of currently registered domains (worldgen
// registers everything live and deliberately leaves expired provider
// domains unregistered) and prices available names with the long-tailed
// distribution the paper reports: 0.01-20,000 USD, median 11.99.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "dns/name.h"
#include "util/rng.h"

namespace govdns::registrar {

class RegistrarClient {
 public:
  virtual ~RegistrarClient() = default;

  // True if `registered_domain` can be registered right now.
  virtual bool IsAvailable(const dns::Name& registered_domain) const = 0;

  // Price in USD to register an available domain; nullopt if unavailable.
  virtual std::optional<double> PriceUsd(
      const dns::Name& registered_domain) const = 0;
};

class SimRegistrar : public RegistrarClient {
 public:
  explicit SimRegistrar(uint64_t seed);

  void Register(const dns::Name& registered_domain);
  void Release(const dns::Name& registered_domain);
  bool IsRegistered(const dns::Name& registered_domain) const;

  // Marks an *available* domain as premium/aftermarket: PriceUsd returns
  // this amount instead of the modelled price (expired-but-auctioned
  // provider domains in the paper cost at least 300 USD).
  void SetPremiumPrice(const dns::Name& registered_domain, double usd);

  bool IsAvailable(const dns::Name& registered_domain) const override;
  std::optional<double> PriceUsd(
      const dns::Name& registered_domain) const override;

  size_t registered_count() const { return registered_.size(); }

 private:
  uint64_t seed_;
  std::set<dns::Name> registered_;
  std::map<dns::Name, double> premium_prices_;
};

// The price model, exposed for direct testing: deterministic in
// (seed, name), in [0.01, 20000], with a large mass at the 11.99 standard
// price so the median matches the paper's.
double RegistrationPriceUsd(uint64_t seed, const dns::Name& name);

}  // namespace govdns::registrar
