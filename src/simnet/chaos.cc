#include "simnet/network.h"

namespace govdns::simnet {

bool ChaosProfile::Any() const {
  return p_flapping > 0.0 || p_rate_limited > 0.0 || p_truncating > 0.0 ||
         p_wrong_id > 0.0 || p_corrupting > 0.0 || p_bursty > 0.0 ||
         p_jittery > 0.0 || p_hang > 0.0 || p_blackhole > 0.0 ||
         p_slow_drip > 0.0;
}

EndpointBehavior ChaosProfile::Realize(uint64_t seed, geo::IPv4 address,
                                       EndpointBehavior base) const {
  if (!Any()) return base;
  // One generator per endpoint, derived from (seed, address) only: the
  // affliction draw is independent of generation order, so adding a host to
  // the world never re-rolls another host's fate.
  util::Rng rng(util::HashString(address.ToString(), seed ^ 0xC4A05));
  if (p_flapping > 0.0 && rng.Bernoulli(p_flapping)) {
    base.flap_period_ms = flap_period_ms;
  }
  if (p_rate_limited > 0.0 && rng.Bernoulli(p_rate_limited)) {
    base.rate_limit_per_sec = rate_limit_per_sec;
  }
  if (p_truncating > 0.0 && rng.Bernoulli(p_truncating)) {
    base.truncate_rate = truncate_rate;
  }
  if (p_wrong_id > 0.0 && rng.Bernoulli(p_wrong_id)) {
    base.wrong_id_rate = wrong_id_rate;
  }
  if (p_corrupting > 0.0 && rng.Bernoulli(p_corrupting)) {
    base.corrupt_rate = corrupt_rate;
  }
  if (p_bursty > 0.0 && rng.Bernoulli(p_bursty)) {
    base.burst_start_rate = burst_start_rate;
    base.burst_length = burst_length;
  }
  if (p_jittery > 0.0 && rng.Bernoulli(p_jittery)) {
    base.rtt_jitter_ms = rtt_jitter_ms;
  }
  // The non-terminating draws come strictly after the original seven so
  // enabling them never re-rolls the fate an endpoint already had for the
  // same (seed, address) — existing worlds keep their bytes.
  if (p_hang > 0.0 && rng.Bernoulli(p_hang)) {
    base.hang = true;
  }
  if (p_blackhole > 0.0 && rng.Bernoulli(p_blackhole)) {
    base.blackhole = true;
  }
  if (p_slow_drip > 0.0 && rng.Bernoulli(p_slow_drip)) {
    base.slow_drip_delay_ms = slow_drip_delay_ms;
  }
  return base;
}

ChaosProfile ChaosProfile::Hostile() {
  ChaosProfile p;
  p.p_flapping = 0.08;
  p.p_rate_limited = 0.05;
  p.p_truncating = 0.04;
  p.p_wrong_id = 0.04;
  p.p_corrupting = 0.04;
  p.p_bursty = 0.10;
  p.p_jittery = 0.25;
  return p;
}

}  // namespace govdns::simnet
