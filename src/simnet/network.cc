#include "simnet/network.h"

namespace govdns::simnet {

SimNetwork::SimNetwork(uint64_t seed) : seed_(seed) {}

void SimNetwork::AttachHandler(geo::IPv4 address, Handler handler) {
  GOVDNS_CHECK(handler != nullptr);
  handlers_[address] = std::move(handler);
}

void SimNetwork::DetachHandler(geo::IPv4 address) { handlers_.erase(address); }

bool SimNetwork::HasHandler(geo::IPv4 address) const {
  return handlers_.contains(address);
}

void SimNetwork::SetBehavior(geo::IPv4 address, EndpointBehavior behavior) {
  behaviors_[address] = behavior;
}

EndpointBehavior SimNetwork::GetBehavior(geo::IPv4 address) const {
  auto it = behaviors_.find(address);
  return it == behaviors_.end() ? EndpointBehavior{} : it->second;
}

util::StatusOr<std::vector<uint8_t>> SimNetwork::Exchange(
    geo::IPv4 server, const std::vector<uint8_t>& wire_query) {
  ++stats_.exchanges;
  const uint64_t exchange_id = exchange_counter_++;

  // Silence wins over everything else, including handler presence: a
  // firewalled host looks the same whether or not a server runs behind it.
  EndpointBehavior behavior = GetBehavior(server);
  if (behavior.silent) {
    clock_.Advance(timeout_ms_);
    ++stats_.timeouts;
    return util::TimeoutError("silent endpoint " + server.ToString());
  }

  auto it = handlers_.find(server);
  if (it == handlers_.end()) {
    // Nothing listens at this address. A real resolver sees either an ICMP
    // unreachable or silence; we model it as promptly unreachable.
    clock_.Advance(5);
    ++stats_.unreachable;
    return util::UnavailableError("no endpoint at " + server.ToString());
  }
  double loss = behavior.loss_rate + extra_loss_rate_;
  if (loss > 0.0) {
    // Loss is a pure function of (seed, server, exchange ordinal) so a rerun
    // of the same world reproduces the same drops, while retries of the same
    // query get fresh draws.
    uint64_t stream = seed_ ^ (uint64_t{server.bits()} << 24) ^ exchange_id;
    util::Rng rng(util::SplitMix64(stream));
    if (rng.Bernoulli(loss)) {
      clock_.Advance(timeout_ms_);
      ++stats_.timeouts;
      return util::TimeoutError("packet lost to " + server.ToString());
    }
  }
  if (behavior.rtt_ms >= timeout_ms_) {
    clock_.Advance(timeout_ms_);
    ++stats_.timeouts;
    return util::TimeoutError("endpoint too slow: " + server.ToString());
  }

  clock_.Advance(behavior.rtt_ms);
  ++stats_.delivered;
  return it->second(wire_query);
}

}  // namespace govdns::simnet
