#include "simnet/network.h"

#include "dns/message.h"

namespace govdns::simnet {

SimNetwork::SimNetwork(uint64_t seed) : seed_(seed) {}

void SimNetwork::AttachHandler(geo::IPv4 address, Handler handler) {
  GOVDNS_CHECK(handler != nullptr);
  handlers_[address] = std::move(handler);
}

void SimNetwork::DetachHandler(geo::IPv4 address) { handlers_.erase(address); }

bool SimNetwork::HasHandler(geo::IPv4 address) const {
  return handlers_.contains(address);
}

void SimNetwork::SetBehavior(geo::IPv4 address, EndpointBehavior behavior) {
  behaviors_[address] = behavior;
  runtime_.erase(address);
}

EndpointBehavior SimNetwork::GetBehavior(geo::IPv4 address) const {
  auto it = behaviors_.find(address);
  return it == behaviors_.end() ? EndpointBehavior{} : it->second;
}

util::StatusOr<std::vector<uint8_t>> SimNetwork::Exchange(
    geo::IPv4 server, const std::vector<uint8_t>& wire_query) {
  ++stats_.exchanges;
  const uint64_t exchange_id = exchange_counter_++;

  // Silence wins over everything else, including handler presence: a
  // firewalled host looks the same whether or not a server runs behind it.
  EndpointBehavior behavior = GetBehavior(server);
  if (behavior.silent) {
    clock_.Advance(timeout_ms_);
    ++stats_.timeouts;
    return util::TimeoutError("silent endpoint " + server.ToString());
  }

  auto it = handlers_.find(server);
  if (it == handlers_.end()) {
    // Nothing listens at this address. A real resolver sees either an ICMP
    // unreachable or silence; we model it as promptly unreachable.
    clock_.Advance(5);
    ++stats_.unreachable;
    return util::UnavailableError("no endpoint at " + server.ToString());
  }

  // Flapping: silent during alternating SimClock windows, with a per-
  // endpoint phase so a fleet of flappers is not synchronized.
  if (behavior.flap_period_ms > 0) {
    uint64_t phase_stream = seed_ ^ (uint64_t{server.bits()} * 0x9E3779B9u);
    uint64_t phase = util::SplitMix64(phase_stream) % behavior.flap_period_ms;
    uint64_t window = (clock_.now_ms() + phase) / behavior.flap_period_ms;
    if (window % 2 == 1) {
      clock_.Advance(timeout_ms_);
      ++stats_.timeouts;
      ++stats_.flap_dropped;
      return util::TimeoutError("flapping endpoint " + server.ToString());
    }
  }

  EndpointRuntime& rt = runtime_[server];

  // An in-progress loss burst swallows this exchange.
  if (rt.burst_remaining > 0) {
    --rt.burst_remaining;
    clock_.Advance(timeout_ms_);
    ++stats_.timeouts;
    ++stats_.burst_dropped;
    return util::TimeoutError("loss burst to " + server.ToString());
  }

  // All per-exchange chance is a pure function of (seed, server, exchange
  // ordinal) so a rerun of the same world reproduces the same drops, while
  // retries of the same query get fresh draws.
  uint64_t stream = seed_ ^ (uint64_t{server.bits()} << 24) ^ exchange_id;
  util::Rng rng(util::SplitMix64(stream));

  if (behavior.burst_start_rate > 0.0 &&
      rng.Bernoulli(behavior.burst_start_rate)) {
    rt.burst_remaining =
        behavior.burst_length > 0 ? behavior.burst_length - 1 : 0;
    clock_.Advance(timeout_ms_);
    ++stats_.timeouts;
    ++stats_.burst_dropped;
    return util::TimeoutError("loss burst to " + server.ToString());
  }

  double loss = behavior.loss_rate + extra_loss_rate_;
  if (loss > 0.0 && rng.Bernoulli(loss)) {
    clock_.Advance(timeout_ms_);
    ++stats_.timeouts;
    return util::TimeoutError("packet lost to " + server.ToString());
  }

  // Response rate limiting: the query arrives, but beyond the per-second
  // budget the server sends REFUSED (RRL-style truncation would also be
  // realistic; REFUSED is the harsher, simpler model).
  if (behavior.rate_limit_per_sec > 0) {
    uint64_t window = clock_.now_ms() / 1000;
    if (rt.rate_window != window) {
      rt.rate_window = window;
      rt.rate_count = 0;
    }
    if (++rt.rate_count > behavior.rate_limit_per_sec) {
      clock_.Advance(behavior.rtt_ms);
      ++stats_.rate_limited;
      ++stats_.delivered;
      auto query = dns::Message::Decode(wire_query);
      dns::Message refused;
      if (query.ok()) {
        refused = dns::MakeResponse(*query, dns::Rcode::kRefused);
      } else {
        refused.header.qr = true;
        refused.header.rcode = dns::Rcode::kRefused;
      }
      return refused.Encode();
    }
  }

  uint32_t rtt = behavior.rtt_ms;
  if (behavior.rtt_jitter_ms > 0) {
    rtt += static_cast<uint32_t>(
        rng.UniformU64(uint64_t{behavior.rtt_jitter_ms} + 1));
  }
  if (rtt >= timeout_ms_) {
    clock_.Advance(timeout_ms_);
    ++stats_.timeouts;
    return util::TimeoutError("endpoint too slow: " + server.ToString());
  }

  clock_.Advance(rtt);
  std::vector<uint8_t> reply = it->second(wire_query);

  // Damaged-but-delivered modes, applied to the wire bytes so the client's
  // parser sees exactly what a broken path would hand it. Draw order is
  // fixed for determinism.
  bool corrupt = behavior.corrupt_rate > 0.0 &&
                 rng.Bernoulli(behavior.corrupt_rate);
  bool truncate = behavior.truncate_rate > 0.0 &&
                  rng.Bernoulli(behavior.truncate_rate);
  bool wrong_id = behavior.wrong_id_rate > 0.0 &&
                  rng.Bernoulli(behavior.wrong_id_rate);
  if (corrupt) {
    // Chop below the 12-byte header and garble: guaranteed undecodable.
    if (reply.size() > 8) reply.resize(8);
    for (uint8_t& b : reply) b ^= 0x5A;
    ++stats_.corrupted;
  } else if (truncate && reply.size() >= 12) {
    reply[2] |= 0x02;  // TC bit (byte 2, bit 1 of the header flags)
    ++stats_.truncated;
  } else if (wrong_id && reply.size() >= 2) {
    reply[0] ^= 0xA5;  // transaction id occupies the first two bytes
    reply[1] ^= 0x5A;
    ++stats_.wrong_id;
  }

  ++stats_.delivered;
  return reply;
}

}  // namespace govdns::simnet
