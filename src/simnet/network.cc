#include "simnet/network.h"

#include "dns/message.h"

namespace govdns::simnet {

thread_local std::vector<SimNetwork::ChaosContext> SimNetwork::context_stack_;

SimNetwork::SimNetwork(uint64_t seed) : seed_(seed) {}

void SimNetwork::AttachHandler(geo::IPv4 address, Handler handler) {
  GOVDNS_CHECK(handler != nullptr);
  std::unique_lock lock(maps_mu_);
  handlers_[address] = std::move(handler);
}

void SimNetwork::DetachHandler(geo::IPv4 address) {
  std::unique_lock lock(maps_mu_);
  handlers_.erase(address);
}

bool SimNetwork::HasHandler(geo::IPv4 address) const {
  std::shared_lock lock(maps_mu_);
  return handlers_.contains(address);
}

void SimNetwork::SetBehavior(geo::IPv4 address, EndpointBehavior behavior) {
  std::unique_lock lock(maps_mu_);
  behaviors_[address] = behavior;
  RuntimeStripeState& stripe = runtime_stripes_[RuntimeStripe(address)];
  std::lock_guard rt_lock(stripe.mu);
  stripe.entries.erase(address);
}

EndpointBehavior SimNetwork::GetBehavior(geo::IPv4 address) const {
  std::shared_lock lock(maps_mu_);
  auto it = behaviors_.find(address);
  return it == behaviors_.end() ? EndpointBehavior{} : it->second;
}

size_t SimNetwork::endpoint_count() const {
  std::shared_lock lock(maps_mu_);
  return handlers_.size();
}

NetworkStats SimNetwork::stats() const {
  NetworkStats s;
  s.exchanges = stats_.exchanges.load(std::memory_order_relaxed);
  s.stream_exchanges =
      stats_.stream_exchanges.load(std::memory_order_relaxed);
  s.timeouts = stats_.timeouts.load(std::memory_order_relaxed);
  s.unreachable = stats_.unreachable.load(std::memory_order_relaxed);
  s.delivered = stats_.delivered.load(std::memory_order_relaxed);
  s.flap_dropped = stats_.flap_dropped.load(std::memory_order_relaxed);
  s.burst_dropped = stats_.burst_dropped.load(std::memory_order_relaxed);
  s.rate_limited = stats_.rate_limited.load(std::memory_order_relaxed);
  s.corrupted = stats_.corrupted.load(std::memory_order_relaxed);
  s.truncated = stats_.truncated.load(std::memory_order_relaxed);
  s.wrong_id = stats_.wrong_id.load(std::memory_order_relaxed);
  s.hung = stats_.hung.load(std::memory_order_relaxed);
  s.blackholed = stats_.blackholed.load(std::memory_order_relaxed);
  s.slow_dripped = stats_.slow_dripped.load(std::memory_order_relaxed);
  return s;
}

SimNetwork::ChaosContext* SimNetwork::ActiveContext() const {
  if (context_stack_.empty() || context_stack_.back().owner != this) {
    return nullptr;
  }
  return &context_stack_.back();
}

void SimNetwork::PushChaosContext(uint64_t tag) {
  ChaosContext ctx;
  ctx.owner = this;
  uint64_t state = seed_ ^ tag;
  ctx.tag_mix = util::SplitMix64(state);
  // Start the context clock at a tag-derived offset inside a ~17-minute
  // horizon so flap windows and rate-limit seconds are not phase-locked
  // across contexts the way they would be if every context began at t=0.
  uint64_t state2 = ctx.tag_mix;
  ctx.clock_ms = util::SplitMix64(state2) % (uint64_t{1} << 20);
  context_stack_.push_back(std::move(ctx));
}

void SimNetwork::PopChaosContext() {
  GOVDNS_CHECK(!context_stack_.empty() &&
               context_stack_.back().owner == this);
  context_stack_.pop_back();
}

uint64_t SimNetwork::now_ms() const {
  const ChaosContext* ctx = ActiveContext();
  return ctx != nullptr ? ctx->clock_ms : clock_.now_ms();
}

void SimNetwork::Delay(uint32_t ms) {
  ChaosContext* ctx = ActiveContext();
  if (ctx != nullptr) {
    ctx->clock_ms += ms;
  } else {
    clock_.Advance(ms);
  }
}

util::StatusOr<std::vector<uint8_t>> SimNetwork::Exchange(
    geo::IPv4 server, const std::vector<uint8_t>& wire_query) {
  return ExchangeImpl(server, wire_query, /*stream=*/false);
}

util::StatusOr<std::vector<uint8_t>> SimNetwork::ExchangeStream(
    geo::IPv4 server, const std::vector<uint8_t>& wire_query) {
  return ExchangeImpl(server, wire_query, /*stream=*/true);
}

util::StatusOr<std::vector<uint8_t>> SimNetwork::ExchangeImpl(
    geo::IPv4 server, const std::vector<uint8_t>& wire_query, bool stream) {
  ChaosContext* ctx = ActiveContext();
  stats_.exchanges.fetch_add(1, std::memory_order_relaxed);
  if (stream) stats_.stream_exchanges.fetch_add(1, std::memory_order_relaxed);
  // In a context, the exchange ordinal is per (context, endpoint): retries
  // of the same query get fresh draws, but the stream is independent of
  // global history and of other threads. Context-free exchanges keep the
  // legacy process-global ordinal.
  const uint64_t exchange_id =
      ctx != nullptr ? ctx->ordinals[server]++
                     : exchange_counter_.fetch_add(1, std::memory_order_relaxed);

  auto advance = [&](uint64_t ms) {
    if (ctx != nullptr) {
      ctx->clock_ms += ms;
    } else {
      clock_.Advance(ms);
    }
  };
  auto local_now = [&]() -> uint64_t {
    return ctx != nullptr ? ctx->clock_ms : clock_.now_ms();
  };

  // Handler/behaviour tables are read-mostly: a shared lock held for the
  // whole exchange keeps them stable under concurrent SetBehavior calls.
  std::shared_lock maps_lock(maps_mu_);

  // Silence wins over everything else, including handler presence: a
  // firewalled host looks the same whether or not a server runs behind it.
  EndpointBehavior behavior;
  if (auto it = behaviors_.find(server); it != behaviors_.end()) {
    behavior = it->second;
  }
  if (behavior.silent) {
    advance(timeout_ms_);
    stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
    return util::TimeoutError("silent endpoint " + server.ToString());
  }

  // Hang: the query vanishes before the server would see it. The client
  // pays its full timeout — the worst a single exchange can cost — and the
  // deadline hierarchy upstream is what keeps total work bounded.
  if (behavior.hang) {
    advance(timeout_ms_);
    stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
    stats_.hung.fetch_add(1, std::memory_order_relaxed);
    return util::TimeoutError("hung endpoint " + server.ToString());
  }

  auto it = handlers_.find(server);
  if (it == handlers_.end()) {
    // Nothing listens at this address. A real resolver sees either an ICMP
    // unreachable or silence; we model it as promptly unreachable.
    advance(5);
    stats_.unreachable.fetch_add(1, std::memory_order_relaxed);
    return util::UnavailableError("no endpoint at " + server.ToString());
  }

  // Blackhole: the query is accepted — the server exists and would answer —
  // but the reply is dropped on the way back. Placed after the handler
  // lookup so an unoccupied address still reports promptly unreachable.
  if (behavior.blackhole) {
    advance(timeout_ms_);
    stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
    stats_.blackholed.fetch_add(1, std::memory_order_relaxed);
    return util::TimeoutError("blackholed endpoint " + server.ToString());
  }

  // Flapping: silent during alternating clock windows, with a per-endpoint
  // phase so a fleet of flappers is not synchronized.
  if (behavior.flap_period_ms > 0) {
    uint64_t phase_stream = seed_ ^ (uint64_t{server.bits()} * 0x9E3779B9u);
    uint64_t phase = util::SplitMix64(phase_stream) % behavior.flap_period_ms;
    uint64_t window = (local_now() + phase) / behavior.flap_period_ms;
    if (window % 2 == 1) {
      advance(timeout_ms_);
      stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
      stats_.flap_dropped.fetch_add(1, std::memory_order_relaxed);
      return util::TimeoutError("flapping endpoint " + server.ToString());
    }
  }

  // Mutable per-endpoint chaos state: context-local when a context is
  // active, else the striped global table under its stripe lock.
  auto with_runtime = [&](auto&& fn) {
    if (ctx != nullptr) {
      fn(ctx->runtime[server]);
    } else {
      RuntimeStripeState& stripe = runtime_stripes_[RuntimeStripe(server)];
      std::lock_guard rt_lock(stripe.mu);
      fn(stripe.entries[server]);
    }
  };

  // An in-progress loss burst swallows this exchange.
  bool in_burst = false;
  with_runtime([&](EndpointRuntime& rt) {
    if (rt.burst_remaining > 0) {
      --rt.burst_remaining;
      in_burst = true;
    }
  });
  if (in_burst) {
    advance(timeout_ms_);
    stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
    stats_.burst_dropped.fetch_add(1, std::memory_order_relaxed);
    return util::TimeoutError("loss burst to " + server.ToString());
  }

  // All per-exchange chance is a pure function of (seed, server, exchange
  // ordinal) — plus the context tag when one is active — so a rerun of the
  // same world reproduces the same drops, while retries of the same query
  // get fresh draws.
  uint64_t draw_stream = seed_ ^ (uint64_t{server.bits()} << 24) ^ exchange_id;
  if (ctx != nullptr) draw_stream ^= ctx->tag_mix;
  util::Rng rng(util::SplitMix64(draw_stream));

  if (behavior.burst_start_rate > 0.0 &&
      rng.Bernoulli(behavior.burst_start_rate)) {
    with_runtime([&](EndpointRuntime& rt) {
      rt.burst_remaining =
          behavior.burst_length > 0 ? behavior.burst_length - 1 : 0;
    });
    advance(timeout_ms_);
    stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
    stats_.burst_dropped.fetch_add(1, std::memory_order_relaxed);
    return util::TimeoutError("loss burst to " + server.ToString());
  }

  double loss = behavior.loss_rate + extra_loss_rate();
  if (loss > 0.0 && rng.Bernoulli(loss)) {
    advance(timeout_ms_);
    stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
    return util::TimeoutError("packet lost to " + server.ToString());
  }

  // Response rate limiting: the query arrives, but beyond the per-second
  // budget the server sends REFUSED (RRL-style truncation would also be
  // realistic; REFUSED is the harsher, simpler model).
  if (behavior.rate_limit_per_sec > 0) {
    bool limited = false;
    uint64_t window = local_now() / 1000;
    with_runtime([&](EndpointRuntime& rt) {
      if (rt.rate_window != window) {
        rt.rate_window = window;
        rt.rate_count = 0;
      }
      limited = ++rt.rate_count > behavior.rate_limit_per_sec;
    });
    if (limited) {
      advance(behavior.rtt_ms);
      stats_.rate_limited.fetch_add(1, std::memory_order_relaxed);
      stats_.delivered.fetch_add(1, std::memory_order_relaxed);
      auto query = dns::Message::Decode(wire_query);
      dns::Message refused;
      if (query.ok()) {
        refused = dns::MakeResponse(*query, dns::Rcode::kRefused);
      } else {
        refused.header.qr = true;
        refused.header.rcode = dns::Rcode::kRefused;
      }
      return refused.Encode();
    }
  }

  uint32_t rtt = behavior.rtt_ms;
  if (behavior.rtt_jitter_ms > 0) {
    rtt += static_cast<uint32_t>(
        rng.UniformU64(uint64_t{behavior.rtt_jitter_ms} + 1));
  }
  // A stream exchange pays the TCP handshake: one extra round trip before
  // the query can even be sent.
  if (stream) rtt += behavior.rtt_ms;
  // Slow drip: the server would answer, but only after an adversarially
  // long pause; when that pushes the RTT past the client timeout the reply
  // arrives too late to count.
  if (behavior.slow_drip_delay_ms > 0) {
    rtt += behavior.slow_drip_delay_ms;
    if (rtt >= timeout_ms_) {
      stats_.slow_dripped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (rtt >= timeout_ms_) {
    advance(timeout_ms_);
    stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
    return util::TimeoutError("endpoint too slow: " + server.ToString());
  }

  advance(rtt);
  std::vector<uint8_t> reply = it->second(wire_query);

  // Damaged-but-delivered modes, applied to the wire bytes so the client's
  // parser sees exactly what a broken path would hand it. Draw order is
  // fixed for determinism. A stream carries none of these: TCP has no
  // 512-byte ceiling to truncate at, checksummed delivery, and a connection
  // an off-path spoofer cannot inject ids into — the draws are still made
  // so a stream retry does not shift the endpoint's datagram draw stream.
  bool corrupt = behavior.corrupt_rate > 0.0 &&
                 rng.Bernoulli(behavior.corrupt_rate);
  bool truncate = behavior.truncate_rate > 0.0 &&
                  rng.Bernoulli(behavior.truncate_rate);
  bool wrong_id = behavior.wrong_id_rate > 0.0 &&
                  rng.Bernoulli(behavior.wrong_id_rate);
  if (stream) corrupt = truncate = wrong_id = false;
  if (corrupt) {
    // Chop below the 12-byte header and garble: guaranteed undecodable.
    if (reply.size() > 8) reply.resize(8);
    for (uint8_t& b : reply) b ^= 0x5A;
    stats_.corrupted.fetch_add(1, std::memory_order_relaxed);
  } else if (truncate && reply.size() >= 12) {
    reply[2] |= 0x02;  // TC bit (byte 2, bit 1 of the header flags)
    stats_.truncated.fetch_add(1, std::memory_order_relaxed);
  } else if (wrong_id && reply.size() >= 2) {
    reply[0] ^= 0xA5;  // transaction id occupies the first two bytes
    reply[1] ^= 0x5A;
    stats_.wrong_id.fetch_add(1, std::memory_order_relaxed);
  }

  stats_.delivered.fetch_add(1, std::memory_order_relaxed);
  return reply;
}

}  // namespace govdns::simnet
