// Simulated IP network.
//
// SimNetwork implements dns::QueryTransport over an in-memory address space:
// every IPv4 endpoint has an optional packet handler (typically an
// AuthServer wrapped by worldgen) and a behaviour profile. This stands in
// for the real Internet between the paper's vantage point and the world's
// nameservers; silence, loss, latency and the whole chaos model below are
// deterministic functions of the world seed, so the whole measurement is
// reproducible.
//
// Thread safety: Exchange may be called concurrently from many worker
// threads. The handler/behaviour tables are guarded by a shared mutex
// (read-mostly), the aggregate statistics are atomics, and the mutable
// per-endpoint chaos state (burst progress, rate-limit window) is striped by
// endpoint. For *deterministic* parallelism, callers push a per-unit-of-work
// chaos context (see dns::QueryTransport::PushChaosContext): an active
// context carries its own logical clock, per-endpoint exchange ordinals and
// chaos runtime, all derived from (seed, tag), so outcomes do not depend on
// thread interleaving. Without a context, the legacy process-global clock
// and exchange counter are used — byte-compatible with the serial
// behaviour this simulator always had.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "dns/transport.h"
#include "geo/ipv4.h"
#include "util/rng.h"
#include "util/status.h"

namespace govdns::simnet {

// A virtual clock advanced by simulated network delays. Purely logical time;
// nothing sleeps. Atomic so concurrent legacy (context-free) exchanges are
// data-race free.
class SimClock {
 public:
  uint64_t now_ms() const { return now_ms_.load(std::memory_order_relaxed); }
  void Advance(uint64_t ms) {
    now_ms_.fetch_add(ms, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_ms_{0};
};

// How an endpoint behaves at the packet level, independent of what the
// attached handler would answer. The base fields model a healthy host on an
// imperfect network; the chaos fields model the adversarial conditions the
// paper's second measurement round exists to rule out (§III-B): flapping
// hosts, response-rate-limited resolvers, middleboxes that truncate or
// corrupt, and off-path spoofers.
struct EndpointBehavior {
  // Never answers (host firewalled/gone). The transport reports kTimeout.
  bool silent = false;
  // Probability in [0, 1] that any single exchange is dropped.
  double loss_rate = 0.0;
  // Round-trip time added to the clock per exchange.
  uint32_t rtt_ms = 30;
  // If the RTT exceeds the client timeout, the exchange times out.

  // --- chaos extensions (all default off) --------------------------------
  // Uniform extra RTT in [0, rtt_jitter_ms] per exchange; pushing the total
  // past the client timeout turns the exchange into a timeout.
  uint32_t rtt_jitter_ms = 0;
  // Probability the reply is garbled into undecodable bytes.
  double corrupt_rate = 0.0;
  // Probability the reply comes back with the TC bit set (UDP-truncated).
  double truncate_rate = 0.0;
  // Probability the reply carries a wrong transaction id (off-path spoof /
  // broken NAT rewriting).
  double wrong_id_rate = 0.0;
  // Correlated loss: probability an exchange *starts* a burst during which
  // this and the next `burst_length - 1` exchanges to the endpoint drop.
  double burst_start_rate = 0.0;
  uint32_t burst_length = 0;
  // Flapping: the endpoint is silent during alternating windows of this
  // many milliseconds of SimClock time (0 = never flaps). The window phase
  // is derived from the seed so different endpoints flap out of step.
  uint32_t flap_period_ms = 0;
  // Response rate limiting: after this many queries within one logical
  // second, further queries get REFUSED (0 = unlimited).
  uint32_t rate_limit_per_sec = 0;

  // --- non-terminating fault classes (DESIGN.md §6g) ---------------------
  // These model servers that never complete a transaction. In simulation
  // they charge the client its full timeout (the worst a single exchange
  // can cost); real boundedness comes from the deadline hierarchy in
  // src/core, which these faults exist to exercise.
  // Hang: the query is never acknowledged in any way — dropped before the
  // server would even see it. Distinct from `silent` only in intent and in
  // the stats breakdown; the client observes a timeout either way.
  bool hang = false;
  // Blackhole: the query is accepted (the server exists and would answer)
  // but the reply never comes back — dropped after accept.
  bool blackhole = false;
  // Slow drip: the server replies, but only after this adversarially long
  // extra delay; when it pushes the RTT past the client timeout the reply
  // arrives too late to count (0 = off).
  uint32_t slow_drip_delay_ms = 0;
};

// A population-level description of how unreliable a set of endpoints is.
// Realize() deterministically afflicts a concrete endpoint: each affliction
// strikes with its `p_*` probability (drawn once per address from the seed),
// using the intensity knobs below when it does. Worldgen attaches a profile
// per generated nameserver so worlds contain realistically flaky
// infrastructure; the default profile is entirely benign.
struct ChaosProfile {
  double p_flapping = 0.0;
  double p_rate_limited = 0.0;
  double p_truncating = 0.0;
  double p_wrong_id = 0.0;
  double p_corrupting = 0.0;
  double p_bursty = 0.0;
  double p_jittery = 0.0;
  // Non-terminating fault classes (DESIGN.md §6g).
  double p_hang = 0.0;
  double p_blackhole = 0.0;
  double p_slow_drip = 0.0;

  uint32_t flap_period_ms = 8000;
  uint32_t rate_limit_per_sec = 4;
  double truncate_rate = 0.5;
  double wrong_id_rate = 0.3;
  double corrupt_rate = 0.3;
  double burst_start_rate = 0.05;
  uint32_t burst_length = 4;
  uint32_t rtt_jitter_ms = 40;
  uint32_t slow_drip_delay_ms = 5000;

  // True when any affliction probability is non-zero.
  bool Any() const;

  // The behaviour of the endpoint at `address` under this profile, starting
  // from `base`. Pure function of (seed, address): re-running the generator
  // afflicts the same endpoints the same way.
  EndpointBehavior Realize(uint64_t seed, geo::IPv4 address,
                           EndpointBehavior base) const;

  // A moderately hostile preset used by tests and the chaos sweep.
  static ChaosProfile Hostile();
};

// Statistics the harness can report on.
struct NetworkStats {
  uint64_t exchanges = 0;
  // Stream (simulated TCP) exchanges, also counted in `exchanges`.
  uint64_t stream_exchanges = 0;
  uint64_t timeouts = 0;
  uint64_t unreachable = 0;
  uint64_t delivered = 0;
  // Chaos-mode breakdowns. Timeout-shaped ones also count in `timeouts`;
  // delivered-but-damaged ones also count in `delivered`.
  uint64_t flap_dropped = 0;
  uint64_t burst_dropped = 0;
  uint64_t rate_limited = 0;
  uint64_t corrupted = 0;
  uint64_t truncated = 0;
  uint64_t wrong_id = 0;
  uint64_t hung = 0;
  uint64_t blackholed = 0;
  uint64_t slow_dripped = 0;
};

class SimNetwork : public dns::QueryTransport {
 public:
  using Handler =
      std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)>;

  // `seed` drives deterministic loss decisions.
  explicit SimNetwork(uint64_t seed);

  // Registers (or replaces) the handler for an address.
  void AttachHandler(geo::IPv4 address, Handler handler);
  void DetachHandler(geo::IPv4 address);
  bool HasHandler(geo::IPv4 address) const;

  void SetBehavior(geo::IPv4 address, EndpointBehavior behavior);
  EndpointBehavior GetBehavior(geo::IPv4 address) const;

  // Client-side timeout used by Exchange; exchanges whose endpoint RTT
  // exceeds it report kTimeout.
  void set_timeout_ms(uint32_t ms) { timeout_ms_ = ms; }
  uint32_t timeout_ms() const { return timeout_ms_; }

  // Additional loss applied to every exchange on top of per-endpoint loss
  // (weather for the whole network; the second-round ablation and the chaos
  // sweep use it).
  void set_extra_loss_rate(double rate) {
    extra_loss_rate_.store(rate, std::memory_order_relaxed);
  }
  double extra_loss_rate() const {
    return extra_loss_rate_.load(std::memory_order_relaxed);
  }

  // dns::QueryTransport:
  util::StatusOr<std::vector<uint8_t>> Exchange(
      geo::IPv4 server, const std::vector<uint8_t>& wire_query) override;
  // Simulated DNS-over-TCP. Subject to the same reachability chaos as UDP
  // (silence, hangs, blackholes, flapping, loss, bursts, rate limiting) and
  // costs an extra RTT for the handshake, but is immune to the
  // datagram-level damage modes: no truncation, corruption or id rewriting —
  // that is precisely why a measurement client retries truncated replies
  // over TCP.
  util::StatusOr<std::vector<uint8_t>> ExchangeStream(
      geo::IPv4 server, const std::vector<uint8_t>& wire_query) override;
  uint64_t now_ms() const override;
  void Delay(uint32_t ms) override;
  void PushChaosContext(uint64_t tag) override;
  void PopChaosContext() override;

  SimClock& clock() { return clock_; }
  // Snapshot of the aggregate counters (by value: the internal counters are
  // atomics updated concurrently).
  NetworkStats stats() const;
  size_t endpoint_count() const;

 private:
  // Mutable per-endpoint chaos state (burst progress, rate-limit window).
  struct EndpointRuntime {
    uint32_t burst_remaining = 0;
    uint64_t rate_window = 0;   // logical second of the current window
    uint32_t rate_count = 0;    // queries seen in that window
  };

  // A thread-local unit-of-work state: its own clock, per-endpoint exchange
  // ordinals and chaos runtime. Every draw inside a context is a pure
  // function of (seed, tag, endpoint, ordinal) — independent of anything
  // other threads do and of process-global history.
  struct ChaosContext {
    const SimNetwork* owner = nullptr;
    uint64_t tag_mix = 0;   // SplitMix64(seed ^ tag), folded into draw streams
    uint64_t clock_ms = 0;  // context-local logical clock
    std::unordered_map<geo::IPv4, uint64_t, geo::IPv4::Hash> ordinals;
    std::unordered_map<geo::IPv4, EndpointRuntime, geo::IPv4::Hash> runtime;
  };

  struct AtomicStats {
    std::atomic<uint64_t> exchanges{0};
    std::atomic<uint64_t> stream_exchanges{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> unreachable{0};
    std::atomic<uint64_t> delivered{0};
    std::atomic<uint64_t> flap_dropped{0};
    std::atomic<uint64_t> burst_dropped{0};
    std::atomic<uint64_t> rate_limited{0};
    std::atomic<uint64_t> corrupted{0};
    std::atomic<uint64_t> truncated{0};
    std::atomic<uint64_t> wrong_id{0};
    std::atomic<uint64_t> hung{0};
    std::atomic<uint64_t> blackholed{0};
    std::atomic<uint64_t> slow_dripped{0};
  };

  // The calling thread's innermost context, if it belongs to this network.
  ChaosContext* ActiveContext() const;

  // Shared datagram/stream exchange pipeline; `stream` selects the TCP
  // semantics described at ExchangeStream.
  util::StatusOr<std::vector<uint8_t>> ExchangeImpl(
      geo::IPv4 server, const std::vector<uint8_t>& wire_query, bool stream);

  static constexpr size_t kRuntimeStripes = 16;
  size_t RuntimeStripe(geo::IPv4 server) const {
    return geo::IPv4::Hash{}(server) % kRuntimeStripes;
  }

  uint64_t seed_;
  std::atomic<uint64_t> exchange_counter_{0};
  uint32_t timeout_ms_ = 2000;
  std::atomic<double> extra_loss_rate_{0.0};
  SimClock clock_;
  AtomicStats stats_;
  mutable std::shared_mutex maps_mu_;  // guards handlers_ and behaviors_
  std::unordered_map<geo::IPv4, Handler, geo::IPv4::Hash> handlers_;
  std::unordered_map<geo::IPv4, EndpointBehavior, geo::IPv4::Hash> behaviors_;
  // Legacy (context-free) chaos runtime, striped by endpoint: each stripe is
  // an independent map under its own lock, so concurrent context-free
  // exchanges to different endpoints never contend or race on a rehash.
  struct RuntimeStripeState {
    std::mutex mu;
    std::unordered_map<geo::IPv4, EndpointRuntime, geo::IPv4::Hash> entries;
  };
  mutable RuntimeStripeState runtime_stripes_[kRuntimeStripes];

  static thread_local std::vector<ChaosContext> context_stack_;
};

}  // namespace govdns::simnet
