// Simulated IP network.
//
// SimNetwork implements dns::QueryTransport over an in-memory address space:
// every IPv4 endpoint has an optional packet handler (typically an
// AuthServer wrapped by worldgen) and a behaviour profile. This stands in
// for the real Internet between the paper's vantage point and the world's
// nameservers; silence, loss, and latency are deterministic functions of the
// world seed, so the whole measurement is reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/transport.h"
#include "geo/ipv4.h"
#include "util/rng.h"
#include "util/status.h"

namespace govdns::simnet {

// A virtual clock advanced by simulated network delays. Purely logical time;
// nothing sleeps.
class SimClock {
 public:
  uint64_t now_ms() const { return now_ms_; }
  void Advance(uint64_t ms) { now_ms_ += ms; }

 private:
  uint64_t now_ms_ = 0;
};

// How an endpoint behaves at the packet level, independent of what the
// attached handler would answer.
struct EndpointBehavior {
  // Never answers (host firewalled/gone). The transport reports kTimeout.
  bool silent = false;
  // Probability in [0, 1] that any single exchange is dropped.
  double loss_rate = 0.0;
  // Round-trip time added to the clock per exchange.
  uint32_t rtt_ms = 30;
  // If the RTT exceeds the client timeout, the exchange times out.
};

// Statistics the harness can report on.
struct NetworkStats {
  uint64_t exchanges = 0;
  uint64_t timeouts = 0;
  uint64_t unreachable = 0;
  uint64_t delivered = 0;
};

class SimNetwork : public dns::QueryTransport {
 public:
  using Handler =
      std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)>;

  // `seed` drives deterministic loss decisions.
  explicit SimNetwork(uint64_t seed);

  // Registers (or replaces) the handler for an address.
  void AttachHandler(geo::IPv4 address, Handler handler);
  void DetachHandler(geo::IPv4 address);
  bool HasHandler(geo::IPv4 address) const;

  void SetBehavior(geo::IPv4 address, EndpointBehavior behavior);
  EndpointBehavior GetBehavior(geo::IPv4 address) const;

  // Client-side timeout used by Exchange; exchanges whose endpoint RTT
  // exceeds it report kTimeout.
  void set_timeout_ms(uint32_t ms) { timeout_ms_ = ms; }
  uint32_t timeout_ms() const { return timeout_ms_; }

  // Additional loss applied to every exchange on top of per-endpoint loss
  // (weather for the whole network; the second-round ablation uses it).
  void set_extra_loss_rate(double rate) { extra_loss_rate_ = rate; }
  double extra_loss_rate() const { return extra_loss_rate_; }

  // dns::QueryTransport:
  util::StatusOr<std::vector<uint8_t>> Exchange(
      geo::IPv4 server, const std::vector<uint8_t>& wire_query) override;

  SimClock& clock() { return clock_; }
  const NetworkStats& stats() const { return stats_; }
  size_t endpoint_count() const { return handlers_.size(); }

 private:
  uint64_t seed_;
  uint64_t exchange_counter_ = 0;
  uint32_t timeout_ms_ = 2000;
  double extra_loss_rate_ = 0.0;
  SimClock clock_;
  NetworkStats stats_;
  std::unordered_map<geo::IPv4, Handler, geo::IPv4::Hash> handlers_;
  std::unordered_map<geo::IPv4, EndpointBehavior, geo::IPv4::Hash> behaviors_;
};

}  // namespace govdns::simnet
