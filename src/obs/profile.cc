#include "obs/profile.h"

namespace govdns::obs {

void PhaseProfiler::Record(PhaseRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

std::vector<PhaseRecord> PhaseProfiler::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::optional<PhaseRecord> PhaseProfiler::LastRecord(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->name == name) return *it;
  }
  return std::nullopt;
}

PhaseProfiler::Scope::Scope(PhaseProfiler* profiler, std::string name)
    : profiler_(profiler), start_(std::chrono::steady_clock::now()) {
  record_.name = std::move(name);
}

PhaseProfiler::Scope::~Scope() {
  record_.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  profiler_->Record(std::move(record_));
}

}  // namespace govdns::obs
