#include "obs/trace.h"

#include <algorithm>

#include "util/rng.h"
#include "util/status.h"

namespace govdns::obs {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kQuery: return "query";
    case TraceEventKind::kBackoff: return "backoff";
    case TraceEventKind::kBreakerSkip: return "breaker_skip";
    case TraceEventKind::kBreakerOpen: return "breaker_open";
    case TraceEventKind::kBudgetDenied: return "budget_denied";
    case TraceEventKind::kNegativeCacheHit: return "negative_cache_hit";
    case TraceEventKind::kGlueAccepted: return "glue_accepted";
    case TraceEventKind::kGlueRejected: return "glue_rejected";
    case TraceEventKind::kRound2: return "round2";
    case TraceEventKind::kOutcome: return "outcome";
    case TraceEventKind::kDeadlineDenied: return "deadline_denied";
    case TraceEventKind::kQuarantined: return "quarantined";
  }
  return "unknown";
}

DomainTrace::DomainTrace(std::string domain, size_t max_events)
    : domain_(std::move(domain)), max_events_(max_events) {
  GOVDNS_CHECK(max_events_ > 0);
}

void DomainTrace::Record(TraceEventKind kind, uint64_t at_ms, uint32_t server,
                         uint8_t aux) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{kind, aux, server, at_ms});
}

TraceRing::TraceRing(TraceConfig config) : config_(config) {
  GOVDNS_CHECK(config_.sample_period > 0);
  GOVDNS_CHECK(config_.max_domains > 0);
  GOVDNS_CHECK(config_.max_events_per_domain > 0);
}

bool TraceRing::Sampled(std::string_view domain) const {
  if (config_.sample_period == 1) return true;
  return util::HashString(domain) % config_.sample_period == 0;
}

void TraceRing::Fold(DomainTrace&& trace) {
  ++folded_;
  if (ring_.size() < config_.max_domains) {
    ring_.push_back(std::move(trace));
    return;
  }
  ring_[next_] = std::move(trace);
  next_ = (next_ + 1) % ring_.size();
}

std::vector<const DomainTrace*> TraceRing::Entries() const {
  std::vector<const DomainTrace*> out;
  out.reserve(ring_.size());
  // Once full, next_ points at the oldest entry.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(&ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void CutTraceLog::Record(std::string zone, bool reachable, uint32_t ns_count,
                         uint32_t addr_count) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(Entry{std::move(zone), reachable, ns_count, addr_count});
}

std::vector<CutTraceLog::Entry> CutTraceLog::Snapshot() const {
  std::vector<Entry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = entries_;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t CutTraceLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace govdns::obs
