// Aggregate observability context threaded through the pipeline.
//
// One Observability instance spans a study run: the measurer folds worker
// shards into `metrics`, per-domain traces into `traces`, the shared cut
// cache logs publishes into `cut_log`, and Study/BuildReport record phases
// into `profiler`. Everything is optional — components take a nullable
// Observability* and skip all instrumentation work when it is absent, so
// the uninstrumented hot path costs one pointer test.
#pragma once

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace govdns::obs {

struct ObservabilityConfig {
  TraceConfig trace;
};

class Observability {
 public:
  explicit Observability(ObservabilityConfig config = ObservabilityConfig())
      : traces_(config.trace) {}

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceRing& traces() { return traces_; }
  const TraceRing& traces() const { return traces_; }
  CutTraceLog& cut_log() { return cut_log_; }
  const CutTraceLog& cut_log() const { return cut_log_; }
  PhaseProfiler& profiler() { return profiler_; }
  const PhaseProfiler& profiler() const { return profiler_; }

 private:
  MetricsRegistry metrics_;
  TraceRing traces_;
  CutTraceLog cut_log_;
  PhaseProfiler profiler_;
};

}  // namespace govdns::obs
