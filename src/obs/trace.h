// Structured query tracing (DESIGN.md §6d).
//
// A DomainTrace is the per-measured-domain event log: every resolver-level
// decision that shapes the measurement (an attempt sent, a backoff charged,
// a breaker opening, a negative-cache short-circuit, glue accepted or
// rejected by the bailiwick filter) appends one fixed-size POD event,
// timestamped with the *logical* transport clock. Inside a hermetic
// per-domain chaos scope every event — kind, server, timestamp — is a pure
// function of (world seed, domain), so a domain's trace is byte-identical
// no matter how many workers ran the study or which one measured it.
// Shared-cut (infrastructure) computation is deliberately not traced into
// domain logs: its interleaving is scheduling-dependent (see
// IterativeResolver::InfraScope, which suppresses the active trace).
//
// TraceRing bounds memory two ways: deterministic sampling (a domain is
// traced iff a stable hash of its name lands in the sample class) and a
// fixed-capacity ring over traced domains (oldest evicted first). Fold must
// be called in input order — the measurer folds post-join, indexed by the
// query list — which keeps the ring contents independent of worker count.
//
// CutTraceLog records what the shared cut cache *published*. Raw publish
// order and multiplicity are racy (cold-start duplicates), but the entries'
// content is hermetic per zone, so the sorted, deduplicated snapshot is
// deterministic; the raw count is exposed separately as a diagnostic.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace govdns::obs {

enum class TraceEventKind : uint8_t {
  kQuery,            // one datagram sent (aux = attempt index)
  kBackoff,          // retry backoff charged to the clock (aux = attempt)
  kBreakerSkip,      // query suppressed by an open circuit
  kBreakerOpen,      // a server's circuit breaker tripped open
  kBudgetDenied,     // query suppressed by the per-domain budget
  kNegativeCacheHit, // walk cut short by a cached-dead zone
  kGlueAccepted,     // additional-section A record passed the bailiwick check
  kGlueRejected,     // additional-section A record failed the bailiwick check
  kRound2,           // §III-B second round started for this domain
  kOutcome,          // QueryServer verdict (aux = QueryOutcome ordinal)
  kDeadlineDenied,   // query suppressed by the per-domain deadline (§6g)
  kQuarantined,      // domain quarantined (aux = QuarantineReason ordinal)
};

const char* TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kQuery;
  uint8_t aux = 0;      // attempt index / outcome ordinal, kind-dependent
  uint32_t server = 0;  // IPv4 bits; 0 when not applicable
  uint64_t at_ms = 0;   // logical transport-clock timestamp

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class DomainTrace {
 public:
  DomainTrace(std::string domain, size_t max_events);

  // Appends an event; once max_events is reached, further events are
  // counted in dropped() instead (keep-first: the head of a measurement
  // explains the tail).
  void Record(TraceEventKind kind, uint64_t at_ms, uint32_t server = 0,
              uint8_t aux = 0);

  const std::string& domain() const { return domain_; }
  const std::vector<TraceEvent>& events() const { return events_; }
  uint64_t dropped() const { return dropped_; }

 private:
  std::string domain_;
  size_t max_events_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
};

struct TraceConfig {
  // A domain is traced iff HashString(name) % sample_period == 0.
  // 1 = trace everything.
  uint64_t sample_period = 1;
  // Ring capacity: at most this many traced domains are retained, oldest
  // evicted first.
  size_t max_domains = 256;
  size_t max_events_per_domain = 512;
};

// Not internally synchronized: traces are built worker-locally and folded
// from one thread, in input order.
class TraceRing {
 public:
  explicit TraceRing(TraceConfig config = TraceConfig());

  const TraceConfig& config() const { return config_; }

  // Deterministic sampling decision (stable name hash; no global state).
  bool Sampled(std::string_view domain) const;

  void Fold(DomainTrace&& trace);

  // Retained traces, oldest to newest.
  std::vector<const DomainTrace*> Entries() const;
  // Total traces ever folded (≥ Entries().size()).
  uint64_t folded_total() const { return folded_; }

 private:
  TraceConfig config_;
  std::vector<DomainTrace> ring_;
  size_t next_ = 0;  // overwrite position once the ring is full
  uint64_t folded_ = 0;
};

// Thread-safe publish log for the shared cut cache.
class CutTraceLog {
 public:
  struct Entry {
    std::string zone;
    bool reachable = true;
    uint32_t ns_count = 0;
    uint32_t addr_count = 0;

    friend auto operator<=>(const Entry&, const Entry&) = default;
  };

  void Record(std::string zone, bool reachable, uint32_t ns_count,
              uint32_t addr_count);

  // Sorted and deduplicated: deterministic across worker counts because
  // racing publishers of the same cut carry identical content.
  std::vector<Entry> Snapshot() const;

  // Raw publish count, duplicates included (diagnostic only).
  uint64_t recorded() const;

 private:
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace govdns::obs
