// Per-phase study profiling (DESIGN.md §6d).
//
// Each pipeline phase (selection, mining, measurement, each analyzer)
// records one PhaseRecord. Two time axes are kept strictly apart:
//   * logical_ms — transport/SimClock time, a pure function of the world
//     seed and inputs; safe for deterministic outputs and regressions.
//   * wall_ms — host steady_clock time; diagnostic only, and never written
//     into any deterministic export (report JSON carries logical time only).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace govdns::obs {

struct PhaseRecord {
  std::string name;
  int64_t items = 0;       // units processed (seeds, domains, ...)
  uint64_t logical_ms = 0; // deterministic logical time, 0 if no transport use
  double wall_ms = 0.0;    // diagnostic wall time; excluded from exports
};

class PhaseProfiler {
 public:
  void Record(PhaseRecord record);
  std::vector<PhaseRecord> records() const;

  // The most recent record named `name`, if any. Phases that run once per
  // pipeline pass (the common case) read naturally through this; benches use
  // it to pull one phase's wall share out of a profiled run without walking
  // the whole record list themselves.
  std::optional<PhaseRecord> LastRecord(std::string_view name) const;

  // RAII phase bracket: measures wall time from construction to
  // destruction; the caller fills items/logical_ms before scope exit.
  class Scope {
   public:
    Scope(PhaseProfiler* profiler, std::string name);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    void set_items(int64_t items) { record_.items = items; }
    void set_logical_ms(uint64_t ms) { record_.logical_ms = ms; }

   private:
    PhaseProfiler* profiler_;
    PhaseRecord record_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  mutable std::mutex mu_;
  std::vector<PhaseRecord> records_;
};

}  // namespace govdns::obs
