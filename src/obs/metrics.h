// Metrics registry: counters, gauges, histograms for the measurement
// pipeline, designed around the same ownership split as the sharded
// measurer (DESIGN.md §6c/§6d).
//
// Concurrency model: a MetricsRegistry holds the declarations and the
// merged totals; each worker thread owns a private MetricsShard (created by
// NewShard) it updates without any locking, and hands it back via Absorb
// after the pool joins. Counters and histograms are commutative sums, so
// the absorb order cannot change the totals — the merged registry is
// byte-identical for 1 vs N workers. Gauges are registry-level (point
// observations like cache sizes, set under the registry lock).
//
// Determinism taxonomy: every metric is declared kStable (a pure function
// of the world seed and inputs — safe to compare byte-for-byte across runs
// and worker counts) or kDiagnostic (scheduling-dependent, e.g. shared-cut
// cache hit/miss splits, which depend on which worker warmed the cache).
// Snapshot(false) excludes diagnostics, producing the stable view the
// determinism tests pin.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace govdns::obs {

enum class Determinism {
  kStable,      // pure function of (seed, inputs); byte-comparable
  kDiagnostic,  // scheduling-dependent; excluded from stable snapshots
};

// Log2-bucketed histogram. Bucket 0 counts zeros; bucket b >= 1 counts
// values v with 2^(b-1) <= v < 2^b (clamped into the last bucket). Merging
// is element-wise addition, so shard merges commute.
struct HistogramData {
  static constexpr int kBuckets = 33;

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // valid only when count > 0
  uint64_t max = 0;
  uint64_t buckets[kBuckets] = {};

  void Observe(uint64_t value);
  void Merge(const HistogramData& other);

  friend bool operator==(const HistogramData&, const HistogramData&);
};

// A worker-private slab of counter/histogram cells. No internal locking:
// exactly one thread updates a shard, and ownership transfers back to the
// registry through Absorb.
class MetricsShard {
 public:
  void Add(int counter_id, uint64_t delta);
  void Observe(int histogram_id, uint64_t value);

 private:
  friend class MetricsRegistry;
  std::vector<uint64_t> counters_;
  std::vector<HistogramData> histograms_;
};

struct MetricsSnapshot {
  struct Scalar {
    std::string name;
    uint64_t value = 0;
    Determinism determinism = Determinism::kStable;
  };
  struct Gauge {
    std::string name;
    int64_t value = 0;
    Determinism determinism = Determinism::kDiagnostic;
  };
  struct Hist {
    std::string name;
    HistogramData data;
    Determinism determinism = Determinism::kStable;
  };
  // Each section sorted by name (declaration order is an implementation
  // detail; exports must not depend on it).
  std::vector<Scalar> counters;
  std::vector<Gauge> gauges;
  std::vector<Hist> histograms;
};

class MetricsRegistry {
 public:
  // Prepends `prefix` to every name declared (or gauge set) from now on —
  // the per-vantage namespace: a vantage shard sets "vantage.<name>." once
  // at startup and every pipeline metric it emits lands under it, so merged
  // or side-by-side exports from different vantages can never collide.
  // Must be set before the declarations it should cover (redeclaration is
  // matched on the *prefixed* name).
  void set_name_prefix(std::string prefix);
  const std::string& name_prefix() const { return name_prefix_; }

  // Idempotent: redeclaring an existing name returns its id (the original
  // determinism wins). Ids index into shards created *after* the
  // declaration; Absorb tolerates shorter (older) shards.
  int DeclareCounter(std::string_view name,
                     Determinism det = Determinism::kStable);
  int DeclareHistogram(std::string_view name,
                       Determinism det = Determinism::kStable);

  // Registry-level updates (locked); for serial callers without a shard.
  void Add(int counter_id, uint64_t delta);
  void Observe(int histogram_id, uint64_t value);
  void SetGauge(std::string_view name, int64_t value,
                Determinism det = Determinism::kDiagnostic);

  // A shard sized to the current declarations, all cells zero.
  std::unique_ptr<MetricsShard> NewShard() const;

  // Adds the shard's cells into the totals and zeroes the shard. Summation
  // commutes, so absorb order across workers is immaterial.
  void Absorb(MetricsShard& shard);

  MetricsSnapshot Snapshot(bool include_diagnostic = true) const;

 private:
  struct Decl {
    std::string name;
    Determinism det;
  };

  mutable std::mutex mu_;
  std::string name_prefix_;
  std::vector<Decl> counter_decls_;
  std::vector<uint64_t> counter_totals_;
  std::vector<Decl> histogram_decls_;
  std::vector<HistogramData> histogram_totals_;
  std::map<std::string, std::pair<int64_t, Determinism>, std::less<>> gauges_;
};

}  // namespace govdns::obs
