#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "util/status.h"

namespace govdns::obs {

void HistogramData::Observe(uint64_t value) {
  ++count;
  sum += value;
  if (count == 1) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  int bucket = value == 0 ? 0 : std::bit_width(value);
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  ++buckets[bucket];
}

void HistogramData::Merge(const HistogramData& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (int i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
}

bool operator==(const HistogramData& a, const HistogramData& b) {
  if (a.count != b.count || a.sum != b.sum || a.min != b.min || a.max != b.max)
    return false;
  return std::equal(a.buckets, a.buckets + HistogramData::kBuckets, b.buckets);
}

void MetricsShard::Add(int counter_id, uint64_t delta) {
  GOVDNS_CHECK(counter_id >= 0 &&
               static_cast<size_t>(counter_id) < counters_.size());
  counters_[counter_id] += delta;
}

void MetricsShard::Observe(int histogram_id, uint64_t value) {
  GOVDNS_CHECK(histogram_id >= 0 &&
               static_cast<size_t>(histogram_id) < histograms_.size());
  histograms_[histogram_id].Observe(value);
}

void MetricsRegistry::set_name_prefix(std::string prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  name_prefix_ = std::move(prefix);
}

int MetricsRegistry::DeclareCounter(std::string_view name, Determinism det) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string full = name_prefix_ + std::string(name);
  for (size_t i = 0; i < counter_decls_.size(); ++i) {
    if (counter_decls_[i].name == full) return static_cast<int>(i);
  }
  counter_decls_.push_back({full, det});
  counter_totals_.push_back(0);
  return static_cast<int>(counter_decls_.size() - 1);
}

int MetricsRegistry::DeclareHistogram(std::string_view name, Determinism det) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string full = name_prefix_ + std::string(name);
  for (size_t i = 0; i < histogram_decls_.size(); ++i) {
    if (histogram_decls_[i].name == full) return static_cast<int>(i);
  }
  histogram_decls_.push_back({full, det});
  histogram_totals_.emplace_back();
  return static_cast<int>(histogram_decls_.size() - 1);
}

void MetricsRegistry::Add(int counter_id, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  GOVDNS_CHECK(counter_id >= 0 &&
               static_cast<size_t>(counter_id) < counter_totals_.size());
  counter_totals_[counter_id] += delta;
}

void MetricsRegistry::Observe(int histogram_id, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  GOVDNS_CHECK(histogram_id >= 0 &&
               static_cast<size_t>(histogram_id) < histogram_totals_.size());
  histogram_totals_[histogram_id].Observe(value);
}

void MetricsRegistry::SetGauge(std::string_view name, int64_t value,
                               Determinism det) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string full = name_prefix_ + std::string(name);
  auto it = gauges_.find(full);
  if (it == gauges_.end()) {
    gauges_.emplace(full, std::make_pair(value, det));
  } else {
    it->second.first = value;  // original determinism wins, as for counters
  }
}

std::unique_ptr<MetricsShard> MetricsRegistry::NewShard() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto shard = std::make_unique<MetricsShard>();
  shard->counters_.assign(counter_decls_.size(), 0);
  shard->histograms_.assign(histogram_decls_.size(), HistogramData{});
  return shard;
}

void MetricsRegistry::Absorb(MetricsShard& shard) {
  std::lock_guard<std::mutex> lock(mu_);
  GOVDNS_CHECK(shard.counters_.size() <= counter_totals_.size());
  GOVDNS_CHECK(shard.histograms_.size() <= histogram_totals_.size());
  for (size_t i = 0; i < shard.counters_.size(); ++i) {
    counter_totals_[i] += shard.counters_[i];
    shard.counters_[i] = 0;
  }
  for (size_t i = 0; i < shard.histograms_.size(); ++i) {
    histogram_totals_[i].Merge(shard.histograms_[i]);
    shard.histograms_[i] = HistogramData{};
  }
}

MetricsSnapshot MetricsRegistry::Snapshot(bool include_diagnostic) const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (size_t i = 0; i < counter_decls_.size(); ++i) {
    if (!include_diagnostic &&
        counter_decls_[i].det == Determinism::kDiagnostic) {
      continue;
    }
    snap.counters.push_back(
        {counter_decls_[i].name, counter_totals_[i], counter_decls_[i].det});
  }
  for (const auto& [name, value_det] : gauges_) {
    if (!include_diagnostic && value_det.second == Determinism::kDiagnostic) {
      continue;
    }
    snap.gauges.push_back({name, value_det.first, value_det.second});
  }
  for (size_t i = 0; i < histogram_decls_.size(); ++i) {
    if (!include_diagnostic &&
        histogram_decls_[i].det == Determinism::kDiagnostic) {
      continue;
    }
    snap.histograms.push_back({histogram_decls_[i].name, histogram_totals_[i],
                               histogram_decls_[i].det});
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

}  // namespace govdns::obs
