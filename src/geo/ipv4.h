// IPv4 addresses, prefixes, and CIDR blocks.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace govdns::geo {

// An IPv4 address stored in host byte order.
class IPv4 {
 public:
  constexpr IPv4() = default;
  constexpr explicit IPv4(uint32_t bits) : bits_(bits) {}
  constexpr IPv4(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : bits_((uint32_t{a} << 24) | (uint32_t{b} << 16) | (uint32_t{c} << 8) |
              d) {}

  constexpr uint32_t bits() const { return bits_; }

  std::string ToString() const;
  static util::StatusOr<IPv4> Parse(const std::string& text);

  // The containing /24 prefix (address with the low octet zeroed).
  constexpr IPv4 Slash24() const { return IPv4(bits_ & 0xFFFFFF00u); }

  friend constexpr auto operator<=>(IPv4 a, IPv4 b) = default;

  struct Hash {
    size_t operator()(IPv4 ip) const {
      uint64_t x = ip.bits_;
      x ^= x >> 16;
      x *= 0x45d9f3b3335b369ULL;
      x ^= x >> 32;
      return static_cast<size_t>(x);
    }
  };

 private:
  uint32_t bits_ = 0;
};

// A CIDR block: network address + prefix length.
class Cidr {
 public:
  constexpr Cidr() = default;
  // Aborts if prefix_len > 32; host bits below the mask are zeroed.
  Cidr(IPv4 network, int prefix_len);

  IPv4 network() const { return network_; }
  int prefix_len() const { return prefix_len_; }

  bool Contains(IPv4 ip) const;
  // Number of addresses covered (2^(32-len)); 0 means 2^32 for len 0.
  uint64_t size() const { return uint64_t{1} << (32 - prefix_len_); }

  std::string ToString() const;
  static util::StatusOr<Cidr> Parse(const std::string& text);

  friend bool operator==(const Cidr&, const Cidr&) = default;

 private:
  static uint32_t MaskFor(int prefix_len);

  IPv4 network_;
  int prefix_len_ = 0;
};

}  // namespace govdns::geo
