#include "geo/asn_db.h"

namespace govdns::geo {

void AsnDatabase::Add(const Cidr& block, uint32_t asn,
                      std::string organization) {
  by_len_[block.prefix_len()][block.network().bits()] =
      AsnInfo{asn, std::move(organization)};
}

std::optional<AsnInfo> AsnDatabase::Lookup(IPv4 ip) const {
  for (int len = 32; len >= 0; --len) {
    const auto& table = by_len_[len];
    if (table.empty()) continue;
    uint32_t mask = len == 0 ? 0 : (~uint32_t{0} << (32 - len));
    auto it = table.find(ip.bits() & mask);
    if (it != table.end()) return it->second;
  }
  return std::nullopt;
}

size_t AsnDatabase::prefix_count() const {
  size_t total = 0;
  for (const auto& table : by_len_) total += table.size();
  return total;
}

AddressAllocator::AddressAllocator(AsnDatabase* db)
    : db_(db),
      // Start in 10/8-adjacent space well away from 0; purely synthetic.
      next_network_(IPv4(11, 0, 0, 0).bits()) {
  GOVDNS_CHECK(db != nullptr);
}

Cidr AddressAllocator::AllocateBlock(int prefix_len,
                                     const std::string& organization,
                                     std::optional<uint32_t> reuse_asn) {
  GOVDNS_CHECK(prefix_len >= 16 && prefix_len <= 24);
  uint64_t size = uint64_t{1} << (32 - prefix_len);
  // Align the cursor to the block size.
  next_network_ = (next_network_ + size - 1) & ~(size - 1);
  GOVDNS_CHECK(next_network_ + size <= (uint64_t{1} << 32));
  Cidr block(IPv4(static_cast<uint32_t>(next_network_)), prefix_len);
  next_network_ += size;
  uint32_t asn = reuse_asn.value_or(next_asn_++);
  db_->Add(block, asn, organization);
  return block;
}

IPv4 AddressAllocator::HostInBlock(const Cidr& block, uint32_t index) {
  uint64_t offset = uint64_t{index} + 1;  // skip network address .0
  GOVDNS_CHECK(offset < block.size());
  return IPv4(block.network().bits() + static_cast<uint32_t>(offset));
}

}  // namespace govdns::geo
