// ASN database with longest-prefix-match lookup.
//
// Plays the role of MaxMind's GeoIP2 ASN database in the paper's diversity
// analysis (Table I): given a nameserver's IPv4 address, report the
// autonomous system it belongs to. Also hands out address space to the world
// generator via AddressAllocator.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "geo/ipv4.h"
#include "util/status.h"

namespace govdns::geo {

struct AsnInfo {
  uint32_t asn = 0;
  std::string organization;

  friend bool operator==(const AsnInfo&, const AsnInfo&) = default;
};

// Immutable-after-build prefix database. Lookups return the most specific
// (longest) registered prefix containing the address.
class AsnDatabase {
 public:
  void Add(const Cidr& block, uint32_t asn, std::string organization);

  // Longest-prefix match; nullopt if no registered block covers `ip`.
  std::optional<AsnInfo> Lookup(IPv4 ip) const;

  size_t prefix_count() const;

 private:
  // One ordered map per prefix length; lookup scans from /32 down to /0,
  // which is at most 33 O(log n) probes — plenty fast at our scale.
  std::map<uint32_t, AsnInfo> by_len_[33];
};

// Sequentially carves address space out of a pool of /16 super-blocks and
// registers each carved block in the AsnDatabase. The world generator asks
// for one block per operator (government network, hosting provider, ...).
class AddressAllocator {
 public:
  explicit AddressAllocator(AsnDatabase* db);

  // Allocates a fresh /`prefix_len` block (prefix_len in [16, 24]) for the
  // given organization, assigning it a new ASN unless `reuse_asn` is set.
  Cidr AllocateBlock(int prefix_len, const std::string& organization,
                     std::optional<uint32_t> reuse_asn = std::nullopt);

  // Returns the i-th host address inside a previously allocated block.
  // Skips .0; aborts if the index exceeds the block size.
  static IPv4 HostInBlock(const Cidr& block, uint32_t index);

  uint32_t last_asn() const { return next_asn_ - 1; }

 private:
  AsnDatabase* db_;
  uint64_t next_network_;  // next unallocated address (host order)
  uint32_t next_asn_ = 64512;
};

}  // namespace govdns::geo
