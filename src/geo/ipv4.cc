#include "geo/ipv4.h"

#include <cstdio>

namespace govdns::geo {

std::string IPv4::ToString() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (bits_ >> 24) & 0xFF,
                (bits_ >> 16) & 0xFF, (bits_ >> 8) & 0xFF, bits_ & 0xFF);
  return buf;
}

util::StatusOr<IPv4> IPv4::Parse(const std::string& text) {
  unsigned a, b, c, d;
  char tail;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4) {
    return util::ParseError("bad IPv4: " + text);
  }
  if (a > 255 || b > 255 || c > 255 || d > 255) {
    return util::ParseError("IPv4 octet out of range: " + text);
  }
  return IPv4(static_cast<uint8_t>(a), static_cast<uint8_t>(b),
              static_cast<uint8_t>(c), static_cast<uint8_t>(d));
}

uint32_t Cidr::MaskFor(int prefix_len) {
  if (prefix_len == 0) return 0;
  return ~uint32_t{0} << (32 - prefix_len);
}

Cidr::Cidr(IPv4 network, int prefix_len)
    : network_(IPv4(network.bits() & MaskFor(prefix_len))),
      prefix_len_(prefix_len) {
  GOVDNS_CHECK(prefix_len >= 0 && prefix_len <= 32);
}

bool Cidr::Contains(IPv4 ip) const {
  return (ip.bits() & MaskFor(prefix_len_)) == network_.bits();
}

std::string Cidr::ToString() const {
  return network_.ToString() + "/" + std::to_string(prefix_len_);
}

util::StatusOr<Cidr> Cidr::Parse(const std::string& text) {
  auto slash = text.find('/');
  if (slash == std::string::npos) return util::ParseError("no '/': " + text);
  auto ip = IPv4::Parse(text.substr(0, slash));
  if (!ip.ok()) return ip.status();
  int len = 0;
  try {
    len = std::stoi(text.substr(slash + 1));
  } catch (...) {
    return util::ParseError("bad prefix length: " + text);
  }
  if (len < 0 || len > 32) return util::ParseError("prefix length out of range");
  return Cidr(*ip, len);
}

}  // namespace govdns::geo
