#!/bin/bash
cd /root/repo || exit 1
mkdir -p results/full
for n in "$@"; do
  echo "=== $n ==="
  ./build/bench/$n > results/full/$n.txt 2>&1
  echo "done $n rc=$?"
done
